package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mahjong"
	"mahjong/internal/sched"
	"mahjong/internal/trace"
)

// JobState is the lifecycle state of a submitted analysis job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on the worker pool.
	StateRunning JobState = "running"
	// StateDone: finished; query endpoints serve its results.
	StateDone JobState = "done"
	// StateFailed: ended in an error (bad analysis config, solver error).
	StateFailed JobState = "failed"
	// StateCancelled: stopped by its deadline or an explicit cancel.
	StateCancelled JobState = "cancelled"
)

// JobSpec is the JSON body of POST /jobs. Exactly one of IR and
// Benchmark selects the program.
type JobSpec struct {
	// IR is a whole program in the textual IR format.
	IR string `json:"ir,omitempty"`
	// Benchmark names a built-in benchmark ("pmd", "luindex", …).
	Benchmark string `json:"benchmark,omitempty"`
	// Analysis selects the sensitivity ("ci", "2obj", …); default "ci".
	Analysis string `json:"analysis,omitempty"`
	// Heap selects the abstraction; default "mahjong".
	Heap string `json:"heap,omitempty"`
	// BudgetWork caps propagation work (0 = unlimited).
	BudgetWork int64 `json:"budget_work,omitempty"`
	// TimeoutMS is the per-job deadline in milliseconds; 0 uses the
	// server default. The deadline covers the whole pipeline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Degrade controls the graceful-degradation fallback: when building
	// the Mahjong abstraction panics or exhausts its resource budget, the
	// job re-runs on the plain allocation-site abstraction and its result
	// is marked degraded. nil uses the server default (on unless the
	// daemon was started with -no-degrade).
	Degrade *bool `json:"degrade,omitempty"`
	// BudgetFacts, BudgetWords and BudgetPairs cap the job's resource
	// use (propagated facts, live bitset words, automata merge pairs),
	// overriding the server-wide defaults; 0 keeps the default.
	BudgetFacts int64 `json:"budget_facts,omitempty"`
	BudgetWords int64 `json:"budget_words,omitempty"`
	BudgetPairs int64 `json:"budget_pairs,omitempty"`
	// BaseJobID names a previously completed job whose retained analysis
	// state this job's abstraction build should solve incrementally
	// against (mahjong heap only). When the base state is unavailable —
	// the job failed, was evicted from the retention window, or never
	// built a Mahjong abstraction — the build silently falls back to
	// from-scratch and records the reason in the job view.
	BaseJobID string `json:"base_job_id,omitempty"`
	// Class selects the scheduling class: "interactive" (default),
	// "incremental" (the default when base_job_id is set), or "batch".
	// Interactive dequeues before incremental before batch; batch is the
	// first class auto-degraded under queue pressure (docs/ROBUSTNESS.md).
	Class string `json:"class,omitempty"`
}

// job is one submission. The mutex guards the mutable state; results
// are written once before the state moves to a terminal value and are
// only read by handlers after observing that state.
type job struct {
	id      string
	spec    JobSpec
	created time.Time
	// class is the resolved scheduling class; deadline the absolute
	// per-job deadline computed at submission (zero = none). Both are
	// fixed before the job is enqueued.
	class    sched.Class
	deadline time.Time
	// qitem is the job's scheduler entry, kept so cancellation can
	// release the queue slot immediately instead of at dequeue.
	qitem *sched.Item
	// autoDegraded marks a batch job the admission controller downgraded
	// to the alloc-site abstraction before it ran (degradation ladder).
	autoDegraded bool

	mu       sync.Mutex
	state    JobState
	errMsg   string
	cacheHit bool
	// degraded marks a job that completed on the allocation-site
	// fallback after the Mahjong pipeline failed; degradedCause records
	// why (the original error).
	degraded      bool
	degradedCause string
	// retriable marks a failure caused by the server (shutdown before
	// the job started), not the job itself: the same submission should
	// succeed on a live server.
	retriable bool
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil while running
	// deltaUsed marks an abstraction actually warm-started from the base
	// job named in spec.BaseJobID; deltaReason records why it was not
	// (unavailable base, shape change, cache hit, …).
	deltaUsed   bool
	deltaReason string

	prog *mahjong.Program
	abs  *mahjong.Abstraction
	rep  *mahjong.Report
	// query caches the per-job demand-query state (private program, CHA
	// graph, bounded solve) so repeated /query calls share one solve.
	query   *queryState
	queryMu sync.Mutex
	// traces holds one snapshotted span tree per pipeline attempt: a
	// degraded job carries the failed Mahjong attempt and the alloc-site
	// re-run side by side.
	traces []*trace.Trace
	// qspan is the open server.queue span covering the job's wait for a
	// worker; queueTrace is its snapshot, taken exactly once (qspan nils
	// out) whichever end the wait finds first — dequeue, shed, cancel, or
	// shutdown drain. It is served as a separate field of /jobs/{id}/trace
	// so attempt traces keep their root-is-server.job shape.
	qtr        *trace.Tracer
	qspan      trace.Span
	queueTrace *trace.Trace
}

// addTrace appends one attempt's snapshotted span tree.
func (j *job) addTrace(t *trace.Trace) {
	j.mu.Lock()
	j.traces = append(j.traces, t)
	j.mu.Unlock()
}

// traceSnapshots returns the job's per-attempt traces. Each element is
// an immutable snapshot, so only the slice header needs copying.
func (j *job) traceSnapshots() []*trace.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*trace.Trace(nil), j.traces...)
}

// closeQueueSpan ends the job's server.queue span with err's failure
// class and snapshots it, exactly once: dequeue, shed, client cancel and
// shutdown drain all race to be the end of the wait, and whichever gets
// there first wins. Returns the snapshot and the measured queue wait
// (nil, 0 on every later call).
func (j *job) closeQueueSpan(err error) (*trace.Trace, time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.qtr == nil {
		return nil, 0
	}
	j.qspan.Close(err)
	j.queueTrace = j.qtr.Snapshot()
	j.qtr = nil
	var wait time.Duration
	if j.qitem != nil && !j.qitem.Enqueued.IsZero() {
		wait = time.Since(j.qitem.Enqueued)
	}
	return j.queueTrace, wait
}

// queueTraceSnapshot returns the snapshotted queue span, nil while the
// job is still waiting.
func (j *job) queueTraceSnapshot() *trace.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.queueTrace
}

// view is the JSON rendering of a job's status.
type view struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Error     string   `json:"error,omitempty"`
	Benchmark string   `json:"benchmark,omitempty"`
	Analysis  string   `json:"analysis"`
	Heap      string   `json:"heap"`
	// Class is the resolved scheduling class ("interactive",
	// "incremental", "batch").
	Class    string `json:"class"`
	CacheHit bool   `json:"abstraction_cache_hit"`
	Degraded bool   `json:"degraded,omitempty"`
	// DegradedCause explains a degraded result: the error that made the
	// job fall back to the allocation-site abstraction.
	DegradedCause string `json:"degraded_cause,omitempty"`
	// Retriable marks a failure the client should retry (the server shut
	// down before the job started); paired with HTTP 503 + Retry-After.
	Retriable bool `json:"retriable,omitempty"`
	// BaseJobID echoes the requested incremental base; DeltaUsed reports
	// whether the abstraction was actually warm-started from it, and
	// DeltaReason explains a fallback to the from-scratch build.
	BaseJobID   string `json:"base_job_id,omitempty"`
	DeltaUsed   bool   `json:"delta_used,omitempty"`
	DeltaReason string `json:"delta_reason,omitempty"`
	Created     string `json:"created"`
	Started     string `json:"started,omitempty"`
	Finished    string `json:"finished,omitempty"`

	Result *resultView `json:"result,omitempty"`
}

// resultView summarizes a completed job.
type resultView struct {
	Scalable       bool    `json:"scalable"`
	TimeMS         int64   `json:"time_ms"`
	Work           int64   `json:"work"`
	CSObjects      int     `json:"cs_objects"`
	CSMethods      int     `json:"cs_methods"`
	CallGraphEdges int     `json:"call_graph_edges"`
	PolyCallSites  int     `json:"poly_call_sites"`
	MayFailCasts   int     `json:"may_fail_casts"`
	Reachable      int     `json:"reachable_methods"`
	Objects        int     `json:"objects,omitempty"`
	MergedObjects  int     `json:"merged_objects,omitempty"`
	Reduction      float64 `json:"reduction,omitempty"`
}

func (j *job) view() view {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := view{
		ID:            j.id,
		State:         j.state,
		Error:         j.errMsg,
		Benchmark:     j.spec.Benchmark,
		Analysis:      defaulted(j.spec.Analysis, "ci"),
		Heap:          defaulted(j.spec.Heap, string(mahjong.HeapMahjong)),
		Class:         j.class.String(),
		CacheHit:      j.cacheHit,
		Degraded:      j.degraded,
		DegradedCause: j.degradedCause,
		Retriable:     j.retriable,
		BaseJobID:     j.spec.BaseJobID,
		DeltaUsed:     j.deltaUsed,
		DeltaReason:   j.deltaReason,
		Created:       j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone && j.rep != nil {
		rv := &resultView{
			Scalable:       j.rep.Scalable,
			TimeMS:         j.rep.Time.Milliseconds(),
			Work:           j.rep.Work,
			CSObjects:      j.rep.CSObjects,
			CSMethods:      j.rep.CSMethods,
			CallGraphEdges: j.rep.Metrics.CallGraphEdges,
			PolyCallSites:  j.rep.Metrics.PolyCallSites,
			MayFailCasts:   j.rep.Metrics.MayFailCasts,
			Reachable:      j.rep.Metrics.Reachable,
		}
		if j.abs != nil {
			rv.Objects = j.abs.Objects
			rv.MergedObjects = j.abs.MergedObjects
			rv.Reduction = j.abs.Reduction()
		}
		v.Result = rv
	}
	return v
}

// ready returns the completed report and program, or an error naming
// the job's current (non-done) state.
func (j *job) ready() (*mahjong.Report, *mahjong.Program, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, nil, fmt.Errorf("job %s is %s, not done", j.id, j.state)
	}
	return j.rep, j.prog, nil
}

func defaulted(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// jobStore indexes jobs by ID in submission order.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	byID map[string]*job
	all  []*job
}

func newJobStore() *jobStore {
	return &jobStore{byID: make(map[string]*job)}
}

func (s *jobStore) add(spec JobSpec, prog *mahjong.Program, class sched.Class, deadline time.Time) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j%d", s.seq),
		spec:     spec,
		created:  time.Now(),
		class:    class,
		deadline: deadline,
		state:    StateQueued,
		prog:     prog,
	}
	s.byID[j.id] = j
	s.all = append(s.all, j)
	return j
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

func (s *jobStore) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, len(s.all))
	copy(out, s.all)
	return out
}
