package server

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mahjong"
	"mahjong/internal/faultinject"
	"mahjong/internal/sched"
	"mahjong/internal/trace"
)

// knownStages pre-declares every pipeline stage as a
// mahjongd_stage_failures_total label, so /metrics exposes a stable,
// zero-valued series per stage from the first scrape instead of
// materializing labels only after a stage's first failure (which breaks
// dashboards and rate() queries that assume the series exists).
//
// mahjongvet's stagehook analyzer cross-checks this registry against the
// faultinject Stage* constants and the Fire/Mutate seams: adding a stage
// without listing it here fails `make lint`.
var knownStages = []string{
	faultinject.StageSolve,
	faultinject.StageShardSolve,
	faultinject.StageRenumber,
	faultinject.StageCollapse,
	faultinject.StageFPG,
	faultinject.StageModel,
	faultinject.StageEquiv,
	faultinject.StageClients,
	faultinject.StageCacheLoad,
	faultinject.StageJob,
	faultinject.StageDelta,
	faultinject.StageSeed,
	faultinject.StageQuery,
	faultinject.StageAdmit,
	faultinject.StageQueue,
}

// metrics holds the daemon's counters. All fields are atomics so that
// workers, handlers, and the cache update them without a shared lock
// (per-stage failures, being rare by construction, use a small mutex).
type metrics struct {
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsRejected  atomic.Int64 // all rejected submissions (full + wait + closing)
	jobsRunning   atomic.Int64
	jobsDegraded  atomic.Int64 // jobs completed on the alloc-site fallback

	// Overload-control counters (docs/ROBUSTNESS.md). jobsRejected above
	// stays the total; these split it by cause and add the two shedding
	// outcomes that are not rejections.
	rejectedFull     atomic.Int64 // 429s because the queue was at capacity
	rejectedWait     atomic.Int64 // 429s because estimated wait exceeded the deadline
	jobsShed         atomic.Int64 // queued jobs failed by deadline expiry before running
	jobsAutodegraded atomic.Int64 // batch jobs downgraded to alloc-site at admission

	panicsRecovered  atomic.Int64 // panics converted to job failures
	budgetExhausted  atomic.Int64 // jobs hitting a resource budget
	cacheQuarantined atomic.Int64 // corrupt cache entries evicted

	// stageFailures counts failures by pipeline stage ("pta.solve",
	// "core.build", "server.cache.load", …).
	failMu        sync.Mutex
	stageFailures map[string]int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Incremental (delta) jobs: submissions naming a base_job_id, split
	// into warm starts and fallbacks to the from-scratch build.
	deltaJobs      atomic.Int64
	deltaWarm      atomic.Int64
	deltaFallbacks atomic.Int64

	// Demand queries (POST /jobs/{id}/query) by answer source.
	queriesTotal  atomic.Int64
	queriesFull   atomic.Int64 // answered from a completed job's result
	queriesCHA    atomic.Int64 // short-circuited by CHA unreachability
	queriesDemand atomic.Int64 // answered by the bounded demand solve
	queryErrors   atomic.Int64

	solverWork atomic.Int64 // propagation units across all main analyses
	preNS      atomic.Int64 // pre-analysis time, abstraction builds only
	fpgNS      atomic.Int64 // FPG construction time
	mergeNS    atomic.Int64 // heap-modeling (merge) time
	analysisNS atomic.Int64 // main-analysis wall time

	// Solver-internal counters, accumulated from pta.Stats per analysis.
	solverPropagated atomic.Int64 // points-to facts pushed through the worklist
	solverSCCs       atomic.Int64 // copy cycles collapsed
	solverSCCNodes   atomic.Int64 // nodes folded into cycle representatives
	solverMaskHits   atomic.Int64 // filtered propagations served by class masks

	// stageDur holds one fixed-bucket duration histogram per known
	// pipeline stage, fed from job span trees. The map is built once in
	// newMetrics and never mutated afterwards, so lookups are lock-free;
	// the bucket counters themselves are atomics.
	stageDur map[string]*durHist

	// queueWait histograms the time jobs spent waiting for a worker
	// (including jobs that were shed or cancelled while queued — those
	// waits are exactly the signal overload dashboards need).
	queueWait durHist
}

// newMetrics returns a metrics set with a pre-sized histogram per
// registered pipeline stage.
func newMetrics() *metrics {
	m := &metrics{stageDur: make(map[string]*durHist, len(knownStages))}
	for _, stage := range knownStages {
		m.stageDur[stage] = &durHist{}
	}
	return m
}

// observeQueueWait records one job's time-in-queue.
func (m *metrics) observeQueueWait(d time.Duration) {
	m.queueWait.observe(d.Nanoseconds())
}

// histBoundsNS are the stage-duration histogram bucket upper bounds in
// nanoseconds (1ms … 100s); +Inf is implicit. Fixed bounds keep the
// /metrics output deterministic and scrape-friendly.
var histBoundsNS = [...]int64{
	int64(time.Millisecond),
	int64(10 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(time.Second),
	int64(10 * time.Second),
	int64(100 * time.Second),
}

// durHist is a fixed-bucket duration histogram (atomic, lock-free).
// buckets[i] counts observations <= histBoundsNS[i]; inf catches the
// rest. Cumulative counts are computed at snapshot time.
type durHist struct {
	buckets [len(histBoundsNS)]atomic.Int64
	inf     atomic.Int64
	sumNS   atomic.Int64
}

func (h *durHist) observe(ns int64) {
	h.sumNS.Add(ns)
	for i, bound := range histBoundsNS {
		if ns <= bound {
			h.buckets[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// observeTrace feeds every closed span of one attempt's snapshot into
// the per-stage duration histograms. Open spans (DurNS < 0) and stages
// outside the registry are skipped — the latter cannot happen for spans
// produced by the pipeline, which stagehook pins to the registry.
func (m *metrics) observeTrace(t *trace.Trace) {
	if m.stageDur == nil {
		return
	}
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.DurNS < 0 {
			continue
		}
		if h := m.stageDur[s.Stage]; h != nil {
			h.observe(s.DurNS)
		}
	}
}

// StageDuration is the JSON form of one stage's duration histogram.
type StageDuration struct {
	Count int64 `json:"count"`
	SumMS int64 `json:"sum_ms"`
	// Buckets holds cumulative observation counts per bound in
	// histBoundsNS order (the +Inf bucket equals Count).
	Buckets []int64 `json:"buckets"`
}

// snapshot renders one histogram with cumulative bucket counts,
// Prometheus-style.
func (h *durHist) snapshot() StageDuration {
	var sd StageDuration
	var cum int64
	sd.Buckets = make([]int64, 0, len(histBoundsNS))
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		sd.Buckets = append(sd.Buckets, cum)
	}
	sd.Count = cum + h.inf.Load()
	sd.SumMS = h.sumNS.Load() / int64(time.Millisecond)
	return sd
}

// stageDurationSnapshot renders the histograms with cumulative bucket
// counts, Prometheus-style.
func (m *metrics) stageDurationSnapshot() map[string]StageDuration {
	out := make(map[string]StageDuration, len(m.stageDur))
	for _, stage := range knownStages {
		h := m.stageDur[stage]
		if h == nil {
			continue
		}
		out[stage] = h.snapshot()
	}
	return out
}

// noteStageFailure bumps the per-stage failure counter.
func (m *metrics) noteStageFailure(stage string) {
	m.failMu.Lock()
	if m.stageFailures == nil {
		m.stageFailures = make(map[string]int64)
	}
	m.stageFailures[stage]++
	m.failMu.Unlock()
}

func (m *metrics) stageFailureSnapshot() map[string]int64 {
	m.failMu.Lock()
	defer m.failMu.Unlock()
	out := make(map[string]int64, len(m.stageFailures))
	for k, v := range m.stageFailures {
		out[k] = v
	}
	return out
}

// MetricsSnapshot is the JSON form of /metrics?format=json.
type MetricsSnapshot struct {
	// Version is the library/daemon build version (mahjong.Version),
	// exported to Prometheus as the mahjongd_build_info gauge.
	Version string `json:"version"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsQueued    int64 `json:"jobs_queued"`
	JobsDegraded  int64 `json:"jobs_degraded"`

	// Overload control: rejection causes, shedding, auto-degradation,
	// and the per-class queue picture (docs/ROBUSTNESS.md).
	JobsRejectedFull int64 `json:"jobs_rejected_full"`
	JobsRejectedWait int64 `json:"jobs_rejected_wait"`
	JobsShed         int64 `json:"jobs_shed"`
	JobsAutodegraded int64 `json:"jobs_autodegraded"`
	// QueueDepthByClass / InFlightByClass gauge the scheduler per class
	// ("interactive", "incremental", "batch").
	QueueDepthByClass map[string]int64 `json:"queue_depth_by_class"`
	InFlightByClass   map[string]int64 `json:"in_flight_by_class"`
	// QueueWait histograms time-in-queue across all jobs.
	QueueWait StageDuration `json:"queue_wait"`

	PanicsRecovered int64 `json:"panics_recovered"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	// StageFailures counts job failures by pipeline stage.
	StageFailures map[string]int64 `json:"stage_failures"`

	CacheHits        int64 `json:"abstraction_cache_hits"`
	CacheMisses      int64 `json:"abstraction_cache_misses"`
	CacheEntries     int64 `json:"abstraction_cache_entries"`
	CacheQuarantined int64 `json:"abstraction_cache_quarantined"`

	// Delta (incremental) job counters and the retained-state gauge.
	DeltaJobs      int64 `json:"delta_jobs"`
	DeltaWarm      int64 `json:"delta_warm"`
	DeltaFallbacks int64 `json:"delta_fallbacks"`
	DeltaStates    int64 `json:"delta_states_retained"`

	// Demand-query counters by answer source.
	QueriesTotal  int64 `json:"queries_total"`
	QueriesFull   int64 `json:"queries_full"`
	QueriesCHA    int64 `json:"queries_cha"`
	QueriesDemand int64 `json:"queries_demand"`
	QueryErrors   int64 `json:"query_errors"`

	SolverWork     int64 `json:"solver_work_units"`
	PreAnalysisMS  int64 `json:"pre_analysis_ms"`
	FPGBuildMS     int64 `json:"fpg_build_ms"`
	HeapModelingMS int64 `json:"heap_modeling_ms"`
	AnalysisMS     int64 `json:"analysis_ms"`

	SolverPropagatedFacts int64 `json:"solver_propagated_facts"`
	SolverSCCsCollapsed   int64 `json:"solver_sccs_collapsed"`
	SolverNodesCollapsed  int64 `json:"solver_nodes_collapsed"`
	SolverFilterMaskHits  int64 `json:"solver_filter_mask_hits"`

	// StageDurations histograms pipeline-stage wall time, fed from the
	// span trees of finished job attempts.
	StageDurations map[string]StageDuration `json:"stage_durations"`
}

func (m *metrics) snapshot(depths, inflight [sched.NumClasses]int, cacheEntries, deltaStates int) MetricsSnapshot {
	ms := func(ns int64) int64 { return ns / int64(time.Millisecond) }
	queued := 0
	depthByClass := make(map[string]int64, sched.NumClasses)
	inflightByClass := make(map[string]int64, sched.NumClasses)
	for c, name := range sched.ClassNames() {
		queued += depths[c]
		depthByClass[name] = int64(depths[c])
		inflightByClass[name] = int64(inflight[c])
	}
	return MetricsSnapshot{
		Version: mahjong.Version,

		JobsSubmitted: m.jobsSubmitted.Load(),
		JobsCompleted: m.jobsCompleted.Load(),
		JobsFailed:    m.jobsFailed.Load(),
		JobsCancelled: m.jobsCancelled.Load(),
		JobsRejected:  m.jobsRejected.Load(),
		JobsRunning:   m.jobsRunning.Load(),
		JobsQueued:    int64(queued),
		JobsDegraded:  m.jobsDegraded.Load(),

		JobsRejectedFull:  m.rejectedFull.Load(),
		JobsRejectedWait:  m.rejectedWait.Load(),
		JobsShed:          m.jobsShed.Load(),
		JobsAutodegraded:  m.jobsAutodegraded.Load(),
		QueueDepthByClass: depthByClass,
		InFlightByClass:   inflightByClass,
		QueueWait:         m.queueWait.snapshot(),

		PanicsRecovered: m.panicsRecovered.Load(),
		BudgetExhausted: m.budgetExhausted.Load(),
		StageFailures:   m.stageFailureSnapshot(),

		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		CacheEntries:     int64(cacheEntries),
		CacheQuarantined: m.cacheQuarantined.Load(),

		DeltaJobs:      m.deltaJobs.Load(),
		DeltaWarm:      m.deltaWarm.Load(),
		DeltaFallbacks: m.deltaFallbacks.Load(),
		DeltaStates:    int64(deltaStates),

		QueriesTotal:  m.queriesTotal.Load(),
		QueriesFull:   m.queriesFull.Load(),
		QueriesCHA:    m.queriesCHA.Load(),
		QueriesDemand: m.queriesDemand.Load(),
		QueryErrors:   m.queryErrors.Load(),

		SolverWork:     m.solverWork.Load(),
		PreAnalysisMS:  ms(m.preNS.Load()),
		FPGBuildMS:     ms(m.fpgNS.Load()),
		HeapModelingMS: ms(m.mergeNS.Load()),
		AnalysisMS:     ms(m.analysisNS.Load()),

		SolverPropagatedFacts: m.solverPropagated.Load(),
		SolverSCCsCollapsed:   m.solverSCCs.Load(),
		SolverNodesCollapsed:  m.solverSCCNodes.Load(),
		SolverFilterMaskHits:  m.solverMaskHits.Load(),

		StageDurations: m.stageDurationSnapshot(),
	}
}

// writeProm renders the snapshot in the Prometheus text exposition
// format (counters and gauges only; no dependency on a client library).
func writeProm(w io.Writer, s MetricsSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP mahjongd_build_info Build metadata; the value is always 1, the version rides in the label.\n"+
		"# TYPE mahjongd_build_info gauge\nmahjongd_build_info{version=%q} 1\n", s.Version)
	counter("mahjongd_jobs_submitted_total", "Jobs accepted for execution.", s.JobsSubmitted)
	counter("mahjongd_jobs_completed_total", "Jobs that finished successfully.", s.JobsCompleted)
	counter("mahjongd_jobs_failed_total", "Jobs that ended in an error.", s.JobsFailed)
	counter("mahjongd_jobs_cancelled_total", "Jobs stopped by deadline or explicit cancel.", s.JobsCancelled)
	counter("mahjongd_jobs_rejected_total", "Submissions rejected by admission control (queue full, wait estimate, shutdown).", s.JobsRejected)
	counter("mahjongd_jobs_rejected_full_total", "Submissions rejected because the queue was at capacity.", s.JobsRejectedFull)
	counter("mahjongd_jobs_rejected_wait_total", "Submissions rejected because estimated queue wait exceeded the deadline.", s.JobsRejectedWait)
	counter("mahjongd_jobs_shed_total", "Queued jobs failed by deadline expiry before reaching a worker.", s.JobsShed)
	counter("mahjongd_jobs_autodegraded_total", "Batch jobs downgraded to the alloc-site abstraction at admission.", s.JobsAutodegraded)
	gauge("mahjongd_jobs_running", "Jobs currently executing on the worker pool.", s.JobsRunning)
	gauge("mahjongd_jobs_queued", "Jobs waiting for a worker.", s.JobsQueued)
	// Per-class scheduler gauges, emitted in fixed priority order so the
	// exposition stays deterministic.
	fmt.Fprintf(w, "# HELP mahjongd_queue_depth Jobs waiting for a worker, by scheduling class.\n# TYPE mahjongd_queue_depth gauge\n")
	for _, name := range sched.ClassNames() {
		fmt.Fprintf(w, "mahjongd_queue_depth{class=%q} %d\n", name, s.QueueDepthByClass[name])
	}
	fmt.Fprintf(w, "# HELP mahjongd_jobs_in_flight Jobs executing on the worker pool, by scheduling class.\n# TYPE mahjongd_jobs_in_flight gauge\n")
	for _, name := range sched.ClassNames() {
		fmt.Fprintf(w, "mahjongd_jobs_in_flight{class=%q} %d\n", name, s.InFlightByClass[name])
	}
	// Queue-wait histogram, same fixed bounds as the stage durations.
	fmt.Fprintf(w, "# HELP mahjongd_queue_wait_seconds Time jobs spent waiting for a worker.\n# TYPE mahjongd_queue_wait_seconds histogram\n")
	for i, bound := range histBoundsNS {
		var cum int64
		if i < len(s.QueueWait.Buckets) {
			cum = s.QueueWait.Buckets[i]
		}
		fmt.Fprintf(w, "mahjongd_queue_wait_seconds_bucket{le=%q} %d\n", promBound(bound), cum)
	}
	fmt.Fprintf(w, "mahjongd_queue_wait_seconds_bucket{le=\"+Inf\"} %d\n", s.QueueWait.Count)
	fmt.Fprintf(w, "mahjongd_queue_wait_seconds_sum %g\n", float64(s.QueueWait.SumMS)/1e3)
	fmt.Fprintf(w, "mahjongd_queue_wait_seconds_count %d\n", s.QueueWait.Count)
	counter("mahjongd_jobs_degraded_total", "Jobs completed on the allocation-site fallback abstraction.", s.JobsDegraded)
	counter("mahjongd_panics_recovered_total", "Panics recovered at pipeline-stage boundaries.", s.PanicsRecovered)
	counter("mahjongd_budget_exhausted_total", "Jobs that hit a resource budget limit.", s.BudgetExhausted)
	fmt.Fprintf(w, "# HELP mahjongd_stage_failures_total Job failures by pipeline stage.\n# TYPE mahjongd_stage_failures_total counter\n")
	// Every known stage gets a series (zero-valued until it fails), plus
	// any stage observed at runtime that the registry does not know —
	// belt and braces; stagehook keeps the two in sync statically.
	stages := append([]string(nil), knownStages...)
	for stage := range s.StageFailures {
		if !slices.Contains(stages, stage) {
			stages = append(stages, stage)
		}
	}
	sort.Strings(stages)
	for _, stage := range stages {
		fmt.Fprintf(w, "mahjongd_stage_failures_total{stage=%q} %d\n", stage, s.StageFailures[stage])
	}
	counter("mahjongd_abstraction_cache_hits_total", "Abstraction builds skipped via the cache.", s.CacheHits)
	counter("mahjongd_abstraction_cache_misses_total", "Abstraction builds performed and cached.", s.CacheMisses)
	gauge("mahjongd_abstraction_cache_entries", "Abstractions currently cached.", s.CacheEntries)
	counter("mahjongd_abstraction_cache_quarantined_total", "Corrupt cache entries quarantined.", s.CacheQuarantined)
	counter("mahjongd_delta_jobs_total", "Jobs submitted with a base_job_id.", s.DeltaJobs)
	counter("mahjongd_delta_warm_total", "Delta jobs whose abstraction was warm-started from the base state.", s.DeltaWarm)
	counter("mahjongd_delta_fallbacks_total", "Delta jobs that fell back to the from-scratch build.", s.DeltaFallbacks)
	gauge("mahjongd_delta_states_retained", "Completed-job analysis states retained for incremental reuse.", s.DeltaStates)
	counter("mahjongd_queries_total", "Demand queries received on POST /jobs/{id}/query.", s.QueriesTotal)
	counter("mahjongd_queries_full_total", "Demand queries answered exactly from a completed job's result.", s.QueriesFull)
	counter("mahjongd_queries_cha_total", "Demand queries short-circuited by CHA unreachability.", s.QueriesCHA)
	counter("mahjongd_queries_demand_total", "Demand queries answered by the bounded context-insensitive solve.", s.QueriesDemand)
	counter("mahjongd_query_errors_total", "Demand queries that ended in an error.", s.QueryErrors)
	counter("mahjongd_solver_work_units_total", "Points-to propagation work across main analyses.", s.SolverWork)
	counter("mahjongd_pre_analysis_milliseconds_total", "Time spent in context-insensitive pre-analyses.", s.PreAnalysisMS)
	counter("mahjongd_fpg_build_milliseconds_total", "Time spent building field points-to graphs.", s.FPGBuildMS)
	counter("mahjongd_heap_modeling_milliseconds_total", "Time spent merging equivalent automata.", s.HeapModelingMS)
	counter("mahjongd_analysis_milliseconds_total", "Time spent in main points-to analyses.", s.AnalysisMS)
	counter("mahjongd_solver_propagated_facts_total", "Points-to facts pushed through solver worklists.", s.SolverPropagatedFacts)
	counter("mahjongd_solver_sccs_collapsed_total", "Copy cycles collapsed onto representatives.", s.SolverSCCsCollapsed)
	counter("mahjongd_solver_nodes_collapsed_total", "Pointer nodes folded into cycle representatives.", s.SolverNodesCollapsed)
	counter("mahjongd_solver_filter_mask_hits_total", "Filtered propagations served by class-indexed masks.", s.SolverFilterMaskHits)

	// Stage-duration histograms: one series set per registered stage in
	// sorted order (collect-sort-emit keeps the exposition deterministic).
	fmt.Fprintf(w, "# HELP mahjongd_stage_duration_seconds Pipeline stage wall time from job span traces.\n# TYPE mahjongd_stage_duration_seconds histogram\n")
	hstages := make([]string, 0, len(s.StageDurations))
	for stage := range s.StageDurations {
		hstages = append(hstages, stage)
	}
	sort.Strings(hstages)
	for _, stage := range hstages {
		sd := s.StageDurations[stage]
		for i, bound := range histBoundsNS {
			var cum int64
			if i < len(sd.Buckets) {
				cum = sd.Buckets[i]
			}
			fmt.Fprintf(w, "mahjongd_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n",
				stage, promBound(bound), cum)
		}
		fmt.Fprintf(w, "mahjongd_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, sd.Count)
		fmt.Fprintf(w, "mahjongd_stage_duration_seconds_sum{stage=%q} %g\n", stage, float64(sd.SumMS)/1e3)
		fmt.Fprintf(w, "mahjongd_stage_duration_seconds_count{stage=%q} %d\n", stage, sd.Count)
	}
}

// promBound renders a nanosecond bucket bound as a seconds le= label
// ("0.001", "0.01", …, "100").
func promBound(ns int64) string {
	return fmt.Sprintf("%g", float64(ns)/float64(time.Second))
}
