package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mahjong"
	"mahjong/internal/faultinject"
	"mahjong/internal/sched"
)

// parkWorkers installs a StageJob hook that blocks every job until the
// returned release function is called (10s backstop so a failing test
// cannot wedge the suite).
func parkWorkers(t *testing.T) func() {
	t.Helper()
	release := make(chan struct{})
	t.Cleanup(faultinject.Clear)
	faultinject.Set(faultinject.OnStage(faultinject.StageJob, func(string) error {
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
		return nil
	}))
	var once sync.Once
	return func() { once.Do(func() { close(release) }) }
}

// waitRunning polls until n jobs are running.
func waitRunning(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.jobsRunning.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d running jobs", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Scheduling classes resolve from the spec: explicit class wins,
// base_job_id defaults to incremental, everything else to interactive;
// garbage is a 400.
func TestSchedulingClassResolution(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	base := waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}))
	if base.Class != "interactive" {
		t.Fatalf("default class = %q, want interactive", base.Class)
	}
	batch := waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR, Analysis: "ci", Class: "batch"}))
	if batch.Class != "batch" {
		t.Fatalf("explicit class = %q, want batch", batch.Class)
	}
	incr := waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR, Analysis: "ci", BaseJobID: base.ID}))
	if incr.Class != "incremental" {
		t.Fatalf("base_job_id class = %q, want incremental", incr.Class)
	}
	resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Class: "urgent"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "unknown class") {
		t.Fatalf("bogus class: status %d body %s, want 400 naming the class", resp.StatusCode, data)
	}
}

// Admission control: when the estimated queue wait already exceeds the
// job's deadline the submission bounces with 429 + Retry-After and a
// retriable body, before any queue state is created.
func TestAdmissionRejectsOverEstimatedWait(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	release := parkWorkers(t)
	defer release()

	// Teach the scheduler ~1s interactive service times.
	for i := 0; i < 3; i++ {
		srv.schedq.Done(sched.Interactive, time.Second)
	}
	blocker := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	waitRunning(t, srv, 1)
	submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}) // pending depth 1 → est ≈ 1s

	resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "ci", TimeoutMS: 100})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-wait submission: status %d body %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After, body %s", data)
	}
	var e struct {
		Error     string `json:"error"`
		Retriable bool   `json:"retriable"`
	}
	if err := json.Unmarshal(data, &e); err != nil || !e.Retriable || !strings.Contains(e.Error, "estimated queue wait") {
		t.Fatalf("429 body %s, want retriable estimated-wait error", data)
	}
	snap := metricsSnap(t, ts)
	if snap.JobsRejectedWait != 1 || snap.JobsRejected != 1 {
		t.Fatalf("rejected wait/total = %d/%d, want 1/1", snap.JobsRejectedWait, snap.JobsRejected)
	}

	// A generous deadline passes the same estimate.
	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci", TimeoutMS: 60_000})
	release()
	faultinject.Clear()
	for _, jid := range []string{blocker, id} {
		if v := waitJob(t, ts, jid); v.State != StateDone {
			t.Fatalf("job %s: state %s (error %q), want done", jid, v.State, v.Error)
		}
	}
}

// With admission disabled the same overload estimate admits the job.
func TestAdmissionDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, NoAdmission: true})
	release := parkWorkers(t)
	defer release()
	for i := 0; i < 3; i++ {
		srv.schedq.Done(sched.Interactive, time.Hour)
	}
	submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	waitRunning(t, srv, 1)
	submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	// Estimated wait is now ~1h; a 100ms-deadline job is still admitted
	// (and will be shed later rather than rejected up front).
	resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "ci", TimeoutMS: 100})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("no-admission submission: status %d body %s, want 202", resp.StatusCode, data)
	}
}

// A job whose deadline expires while queued is shed: terminal
// immediately, never run, and counted in jobs_shed_total.
func TestQueuedJobShed(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	release := parkWorkers(t)
	defer release()

	blocker := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	waitRunning(t, srv, 1)
	doomed := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci", TimeoutMS: 50})

	v := waitJob(t, ts, doomed)
	if v.State != StateCancelled || !strings.Contains(v.Error, "shed") {
		t.Fatalf("shed job: state %s error %q, want cancelled with a shed message", v.State, v.Error)
	}
	if v.Started != "" {
		t.Fatalf("shed job has a start time %q; it must never have run", v.Started)
	}
	snap := metricsSnap(t, ts)
	if snap.JobsShed != 1 || snap.JobsCancelled != 1 {
		t.Fatalf("shed/cancelled = %d/%d, want 1/1", snap.JobsShed, snap.JobsCancelled)
	}
	// The shed job still has a queue trace to look at, and no attempts.
	var tr struct {
		Queue    *json.RawMessage  `json:"queue"`
		Attempts []json.RawMessage `json:"attempts"`
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+doomed+"/trace", &tr); resp.StatusCode != http.StatusOK || tr.Queue == nil {
		t.Fatalf("shed job trace: status %d queue %v, want 200 with a queue span", resp.StatusCode, tr.Queue)
	}
	if len(tr.Attempts) != 0 {
		t.Fatalf("shed job has %d attempts, want 0", len(tr.Attempts))
	}

	release()
	faultinject.Clear()
	if bv := waitJob(t, ts, blocker); bv.State != StateDone {
		t.Fatalf("blocker: state %s (error %q), want done", bv.State, bv.Error)
	}
}

// Cancelling a queued job releases its queue slot immediately — a new
// submission fits without waiting for a worker to dequeue the corpse.
func TestQueuedCancelReleasesSlot(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := parkWorkers(t)
	defer release()

	blocker := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	waitRunning(t, srv, 1)
	queued := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}) // fills the 1-slot queue

	// Queue full: the next submission bounces with 429.
	resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "ci"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submission: status %d body %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After: %s", data)
	}

	resp, data = postJSON(t, ts.URL+"/jobs/"+queued+"/cancel", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d body %s", resp.StatusCode, data)
	}
	var cv view
	if err := json.Unmarshal(data, &cv); err != nil || cv.State != StateCancelled {
		t.Fatalf("cancel queued: view %s (err %v), want cancelled immediately", data, err)
	}

	// The slot freed without any dequeue: the very next submission fits.
	replacement := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	release()
	faultinject.Clear()
	for _, id := range []string{blocker, replacement} {
		if v := waitJob(t, ts, id); v.State != StateDone {
			t.Fatalf("job %s: state %s (error %q), want done", id, v.State, v.Error)
		}
	}
	snap := metricsSnap(t, ts)
	if snap.JobsCancelled != 1 || snap.JobsCompleted != 2 {
		t.Fatalf("cancelled/completed = %d/%d, want 1/2", snap.JobsCancelled, snap.JobsCompleted)
	}
}

// Degradation ladder: above the autodegrade-wait threshold a new batch
// job is downgraded to the alloc-site abstraction at admission — it
// still completes (sound, cheaper), marked degraded with the threshold
// as cause.
func TestAutoDegradeBatchUnderPressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, AutodegradeWait: 10 * time.Millisecond})
	release := parkWorkers(t)
	defer release()

	for i := 0; i < 3; i++ {
		srv.schedq.Done(sched.Interactive, time.Second)
	}
	blocker := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	waitRunning(t, srv, 1)
	submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}) // pending depth 1 → est ≈ 1s > 10ms

	// An interactive job above the threshold is NOT degraded (the ladder
	// only downgrades batch work) …
	resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "ci"})
	var iv view
	if err := json.Unmarshal(data, &iv); err != nil || resp.StatusCode != http.StatusAccepted || iv.Degraded {
		t.Fatalf("interactive above threshold: status %d view %s, want undegraded 202", resp.StatusCode, data)
	}
	// … a batch job is, visibly in the 202 response already.
	resp, data = postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "2obj", Class: "batch"})
	var bv view
	if err := json.Unmarshal(data, &bv); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch above threshold: status %d body %s, want 202", resp.StatusCode, data)
	}
	if !bv.Degraded || !strings.Contains(bv.DegradedCause, "auto-degraded") {
		t.Fatalf("batch job not auto-degraded at admission: %s", data)
	}

	release()
	faultinject.Clear()
	final := waitJob(t, ts, bv.ID)
	if final.State != StateDone || !final.Degraded {
		t.Fatalf("auto-degraded batch job: state %s degraded %v (error %q), want degraded done",
			final.State, final.Degraded, final.Error)
	}
	if final.Result == nil || final.Result.Reachable == 0 {
		t.Fatalf("auto-degraded job produced no result: %+v", final.Result)
	}
	// Alloc-site run: no Mahjong abstraction was built or cached.
	if resp := getJSON(t, ts.URL+"/jobs/"+bv.ID+"/abstraction", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("auto-degraded job serves an abstraction: status %d, want 404", resp.StatusCode)
	}
	snap := metricsSnap(t, ts)
	if snap.JobsAutodegraded != 1 {
		t.Fatalf("jobs_autodegraded = %d, want 1", snap.JobsAutodegraded)
	}
	if v := waitJob(t, ts, blocker); v.State != StateDone {
		t.Fatalf("blocker: state %s, want done", v.State)
	}
}

// Saturation: flood a parked server far past queue capacity with mixed
// classes. Every submission answers 202 or 429 (never a hang, never a
// 5xx), counters stay monotone while the flood runs, and after release
// every accepted job reaches exactly one terminal state.
func TestSaturationMixedClasses(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:     2,
		QueueDepth:  8,
		ClassQuotas: [sched.NumClasses]int{sched.Interactive: 1},
	})
	release := parkWorkers(t)
	defer release()

	classes := []string{"interactive", "batch", "", "incremental"}
	const flood = 48
	type outcome struct {
		status int
		id     string
	}
	results := make(chan outcome, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "ci", Class: classes[i%len(classes)]})
			var v view
			json.Unmarshal(data, &v) //nolint:errcheck // rejections carry an error body, not a view
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("429 without Retry-After: %s", data)
				}
				var e struct {
					Retriable bool `json:"retriable"`
				}
				if json.Unmarshal(data, &e) != nil || !e.Retriable {
					t.Errorf("429 body not retriable: %s", data)
				}
			}
			results <- outcome{resp.StatusCode, v.ID}
		}(i)
	}

	// Counters must be monotone while the flood is in progress, and the
	// running gauge bounded by the pool size.
	prev := metricsSnap(t, ts)
	for i := 0; i < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		cur := metricsSnap(t, ts)
		if cur.JobsSubmitted < prev.JobsSubmitted || cur.JobsRejected < prev.JobsRejected ||
			cur.JobsCompleted < prev.JobsCompleted || cur.JobsFailed < prev.JobsFailed ||
			cur.JobsCancelled < prev.JobsCancelled {
			t.Fatalf("metrics went backwards: %+v then %+v", prev, cur)
		}
		if cur.JobsRunning > 2 {
			t.Fatalf("jobs_running = %d above the worker-pool size", cur.JobsRunning)
		}
		prev = cur
	}
	wg.Wait()
	close(results)

	var accepted []string
	var rejected int
	for r := range results {
		switch r.status {
		case http.StatusAccepted:
			accepted = append(accepted, r.id)
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("saturation submission answered %d, want 202 or 429", r.status)
		}
	}
	if rejected == 0 {
		t.Fatal("flood past capacity produced no 429s")
	}
	if len(accepted)+rejected != flood {
		t.Fatalf("accounted %d+%d of %d submissions", len(accepted), rejected, flood)
	}

	release()
	faultinject.Clear()
	for _, id := range accepted {
		if v := waitJob(t, ts, id); v.State != StateDone {
			t.Fatalf("accepted job %s: state %s (error %q), want done", id, v.State, v.Error)
		}
	}
	snap := metricsSnap(t, ts)
	if snap.JobsSubmitted != int64(len(accepted)) || snap.JobsRejected != int64(rejected) {
		t.Fatalf("submitted/rejected = %d/%d, want %d/%d",
			snap.JobsSubmitted, snap.JobsRejected, len(accepted), rejected)
	}
	// Exactly-once accounting: terminal counters sum to the accepted
	// total, nothing queued or running remains.
	if got := snap.JobsCompleted + snap.JobsFailed + snap.JobsCancelled; got != int64(len(accepted)) {
		t.Fatalf("terminal sum %d != accepted %d (double- or never-counted job)", got, len(accepted))
	}
	if snap.JobsQueued != 0 || snap.JobsRunning != 0 {
		t.Fatalf("queued/running = %d/%d after drain, want 0/0", snap.JobsQueued, snap.JobsRunning)
	}
	for class, depth := range snap.QueueDepthByClass {
		if depth != 0 {
			t.Fatalf("class %s still has queue depth %d after drain", class, depth)
		}
	}
}

// Shutdown under saturation: with the worker parked, the queue full and
// submissions bouncing, Close must fail every queued job exactly once
// as retriable, cancel the running job, and return.
func TestShutdownUnderSaturation(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, ShutdownGrace: 30 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	t.Cleanup(srv.Close)

	// Park the single worker inside the solve stage so its job observes
	// the shutdown cancellation.
	release := make(chan struct{})
	t.Cleanup(faultinject.Clear)
	faultinject.Set(faultinject.OnStage(faultinject.StageSolve, func(string) error {
		select {
		case <-release:
		case <-time.After(10 * time.Second):
		}
		return nil
	}))

	// 1 running + 4 queued; everything beyond bounces with 429.
	blocker := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := pollJob(t, ts, blocker); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	accepted := []string{blocker}
	var rejected int
	for i := 0; i < 7; i++ {
		resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR, Analysis: "ci"})
		switch resp.StatusCode {
		case http.StatusAccepted:
			var v view
			if err := json.Unmarshal(data, &v); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, v.ID)
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("saturating submission answered %d body %s", resp.StatusCode, data)
		}
	}
	if len(accepted) != 5 || rejected != 3 {
		t.Fatalf("accepted/rejected = %d/%d, want 5/3", len(accepted), rejected)
	}

	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case <-srv.quit:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never completed its drain")
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return under saturation")
	}

	// Every accepted job is terminal exactly once: the running one
	// cancelled, the four queued ones failed retriable.
	terminal := map[JobState]int{}
	for _, id := range accepted {
		v, _ := pollJob(t, ts, id)
		switch v.State {
		case StateFailed:
			if !v.Retriable {
				t.Fatalf("queued job %s failed non-retriable: %q", id, v.Error)
			}
		case StateCancelled:
		default:
			t.Fatalf("job %s left in state %s after shutdown", id, v.State)
		}
		terminal[v.State]++
	}
	if terminal[StateFailed] != 4 || terminal[StateCancelled] != 1 {
		t.Fatalf("terminal states %v, want 4 retriable failures + 1 cancellation", terminal)
	}
	snap := srv.metrics.snapshot(srv.schedq.Depths(), srv.schedq.InFlight(), 0, 0)
	if got := snap.JobsCompleted + snap.JobsFailed + snap.JobsCancelled; got != int64(len(accepted)) {
		t.Fatalf("terminal sum %d != accepted %d", got, len(accepted))
	}
}

// Fault matrix extension: faults injected at the admission and queue
// hand-off seams must reject or fail cleanly, never wedge intake or the
// pool.
func TestFaultMatrixAdmission(t *testing.T) {
	t.Run("admit panic rejects the submission", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		t.Cleanup(faultinject.Clear)
		faultinject.Set(faultinject.OnStage(faultinject.StageAdmit,
			faultinject.Once(faultinject.PanicWith("injected admission bug"))))
		resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: matrixIR})
		faultinject.Clear()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d body %s, want 503", resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("admission-fault 503 lacks Retry-After: %s", data)
		}
		var e struct {
			Error     string `json:"error"`
			Retriable bool   `json:"retriable"`
		}
		if err := json.Unmarshal(data, &e); err != nil || !e.Retriable ||
			!strings.Contains(e.Error, "server.admit") || !strings.Contains(e.Error, "injected admission bug") {
			t.Fatalf("503 body %s, want retriable error naming server.admit and the panic", data)
		}
		snap := metricsSnap(t, ts)
		if snap.StageFailures["server.admit"] != 1 || snap.PanicsRecovered != 1 || snap.JobsRejected != 1 || snap.JobsSubmitted != 0 {
			t.Fatalf("admit/panics/rejected/submitted = %d/%d/%d/%d, want 1/1/1/0",
				snap.StageFailures["server.admit"], snap.PanicsRecovered, snap.JobsRejected, snap.JobsSubmitted)
		}
		assertHealthy(t, ts)
	})

	t.Run("admit budget error rejects the submission", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2})
		t.Cleanup(faultinject.Clear)
		faultinject.Set(faultinject.OnStage(faultinject.StageAdmit,
			faultinject.Once(faultinject.Fail(mahjong.ErrBudgetExhausted))))
		resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: matrixIR})
		faultinject.Clear()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d body %s, want 503", resp.StatusCode, data)
		}
		snap := metricsSnap(t, ts)
		if snap.BudgetExhausted != 1 || snap.JobsRejected != 1 {
			t.Fatalf("budget/rejected = %d/%d, want 1/1", snap.BudgetExhausted, snap.JobsRejected)
		}
		assertHealthy(t, ts)
	})

	t.Run("queue hand-off panic fails one job", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageQueue, faultinject.Once(faultinject.PanicWith("injected dequeue bug"))),
			JobSpec{IR: matrixIR})
		if v.State != StateFailed || !strings.Contains(v.Error, "internal error in server.queue") {
			t.Fatalf("state %s error %q, want typed server.queue failure", v.State, v.Error)
		}
		if snap.StageFailures["server.queue"] != 1 {
			t.Fatalf("stage failures %v, want server.queue:1", snap.StageFailures)
		}
		assertHealthy(t, ts)
	})

	t.Run("queue hand-off budget error fails one job", func(t *testing.T) {
		v, snap, ts := runCase(t,
			faultinject.OnStage(faultinject.StageQueue, faultinject.Once(faultinject.Fail(mahjong.ErrBudgetExhausted))),
			JobSpec{IR: matrixIR})
		if v.State != StateFailed || !strings.Contains(v.Error, "queue hand-off") {
			t.Fatalf("state %s error %q, want a queue hand-off failure", v.State, v.Error)
		}
		if snap.BudgetExhausted != 1 {
			t.Fatalf("budget_exhausted = %d, want 1", snap.BudgetExhausted)
		}
		assertHealthy(t, ts)
	})
}

// The per-class queue gauges and the queue-wait histogram appear in the
// Prometheus exposition with deterministic series.
func TestOverloadPromSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`mahjongd_queue_depth{class="interactive"}`,
		`mahjongd_queue_depth{class="incremental"}`,
		`mahjongd_queue_depth{class="batch"}`,
		`mahjongd_jobs_in_flight{class="interactive"}`,
		"mahjongd_queue_wait_seconds_bucket",
		"mahjongd_queue_wait_seconds_count",
		"mahjongd_jobs_rejected_full_total",
		"mahjongd_jobs_rejected_wait_total",
		"mahjongd_jobs_shed_total",
		"mahjongd_jobs_autodegraded_total",
		fmt.Sprintf("mahjongd_stage_duration_seconds_count{stage=%q}", faultinject.StageQueue),
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
	// The completed job waited in queue once: the histogram counted it.
	if !strings.Contains(body, "mahjongd_queue_wait_seconds_count 1") {
		t.Fatalf("queue-wait histogram did not observe the job's wait:\n%s", body)
	}
}
