package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"mahjong"
	"mahjong/internal/cha"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
	"mahjong/internal/trace"
)

// Demand-driven queries: POST /jobs/{id}/query answers a points-to or
// alias question about one job's program without requiring — or
// triggering — a full context-sensitive solve. Answers come from the
// cheapest sufficient source:
//
//   - "full":   the job is done, so the saturated main-analysis result
//     answers exactly;
//   - "cha":    the variable's method is not even CHA-reachable, so its
//     points-to set is exactly empty (CHA over-approximates any
//     points-to-based reachability from the same entry);
//   - "demand": a budget-bounded context-insensitive solve over a
//     private copy of the program, cached per job, answers from partial
//     saturation; "complete" reports whether the solve saturated before
//     the budget.
//
// The private copy matters: the job's own program may be mid-solve on a
// worker, and the solver mutates shared IR (lazily materialized $exc
// locals), so queries never touch it.

// defaultQueryBudget caps the demand solve's propagation work when
// Config.QueryBudget is unset.
const defaultQueryBudget = 200_000

// querySpec is the JSON body of POST /jobs/{id}/query: exactly one of
// Var ("Class.method/arity#name") or Alias (two such names).
type querySpec struct {
	Var   string   `json:"var,omitempty"`
	Alias []string `json:"alias,omitempty"`
}

// queryAnswer is the response body.
type queryAnswer struct {
	Job    string `json:"job"`
	Source string `json:"source"` // full | cha | demand
	// Complete reports whether the answer is exact: a demand solve that
	// hit its work budget yields a sound but possibly smaller set.
	Complete bool     `json:"complete"`
	Var      string   `json:"var,omitempty"`
	Objects  []string `json:"objects,omitempty"`
	Types    []string `json:"types,omitempty"`
	Alias    *bool    `json:"alias,omitempty"`
	// Overlap lists the objects witnessing an alias (the intersection of
	// the two points-to sets).
	Overlap []string `json:"overlap,omitempty"`
}

// queryState is a job's cached demand-query machinery: a private parse
// of the program, its CHA call graph, and (lazily) one bounded solve
// shared by all queries against the job.
type queryState struct {
	prog *mahjong.Program
	cg   *cha.Graph

	mu  sync.Mutex
	res *pta.Result
}

// solve runs (once) the bounded context-insensitive solve. Callers hold
// q.mu.
func (q *queryState) solve(ctx context.Context, work int64, tc trace.Ctx) (*pta.Result, error) {
	if q.res != nil {
		return q.res, nil
	}
	res, err := pta.SolveContext(ctx, q.prog, pta.Options{
		Budget: pta.Budget{Work: work},
		Trace:  tc,
	})
	if err != nil {
		return nil, err
	}
	q.res = res
	return res, nil
}

// queryError carries an HTTP status for client-side query mistakes
// (unknown variable, bad spec) so they do not surface as 500s.
type queryError struct {
	code int
	msg  string
}

func (e *queryError) Error() string { return e.msg }

func qerrf(code int, format string, args ...any) error {
	return &queryError{code: code, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var spec querySpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if (spec.Var == "") == (len(spec.Alias) == 0) {
		httpError(w, http.StatusBadRequest, "set exactly one of var or alias")
		return
	}
	if len(spec.Alias) != 0 && len(spec.Alias) != 2 {
		httpError(w, http.StatusBadRequest, "alias takes exactly two variables, got %d", len(spec.Alias))
		return
	}

	s.metrics.queriesTotal.Add(1)
	// Each query gets its own tracer: queries arrive independently of job
	// attempts, and their spans feed the same stage-duration histograms.
	tr := trace.New()
	ans, err := s.answerQuery(r.Context(), j, spec, tr.Root())
	s.metrics.observeTrace(tr.Snapshot())
	if err != nil {
		s.metrics.queryErrors.Add(1)
		var qe *queryError
		if errors.As(err, &qe) {
			httpError(w, qe.code, "%s", qe.msg)
			return
		}
		s.metrics.noteStageFailure(faultinject.StageQuery)
		httpError(w, http.StatusInternalServerError, "query: %v", err)
		return
	}
	switch ans.Source {
	case "full":
		s.metrics.queriesFull.Add(1)
	case "cha":
		s.metrics.queriesCHA.Add(1)
	case "demand":
		s.metrics.queriesDemand.Add(1)
	}
	writeJSON(w, http.StatusOK, ans)
}

// answerQuery resolves one query through the source ladder (full → cha
// → demand) under the server.query stage guards.
func (s *Server) answerQuery(ctx context.Context, j *job, spec querySpec, tc trace.Ctx) (ans *queryAnswer, err error) {
	sp := tc.Start(faultinject.StageQuery)
	defer func() {
		if ans != nil {
			sp.Add("objects", int64(len(ans.Objects)+len(ans.Overlap)))
		}
		sp.Close(err)
	}()
	defer failure.Recover(faultinject.StageQuery, &err)
	if ferr := faultinject.Fire(faultinject.StageQuery); ferr != nil {
		return nil, fmt.Errorf("demand query: %w", ferr)
	}

	// A completed, scalable job answers exactly from its own result.
	if rep, prog, rerr := j.ready(); rerr == nil && rep.Scalable {
		return assembleAnswer(j.id, "full", true, rep.Result(), prog, spec)
	}

	qs, err := s.queryStateFor(j)
	if err != nil {
		return nil, err
	}
	qs.mu.Lock()
	defer qs.mu.Unlock()

	vars, err := queryVars(qs.prog, spec)
	if err != nil {
		return nil, err
	}
	// CHA shortcut: a variable in a method CHA cannot reach has an
	// exactly empty points-to set — no solving needed, and for an alias
	// question one empty side settles it.
	for _, v := range vars {
		if !qs.cg.Reachable[v.Method] {
			ans := &queryAnswer{Job: j.id, Source: "cha", Complete: true}
			if spec.Var != "" {
				ans.Var = v.String()
			} else {
				no := false
				ans.Alias = &no
			}
			return ans, nil
		}
	}

	res, err := qs.solve(ctx, s.queryBudget(), sp.Ctx())
	if err != nil {
		return nil, err
	}
	return assembleAnswer(j.id, "demand", !res.Aborted, res, qs.prog, spec)
}

// queryStateFor returns (building on first use) the job's private
// demand-query state.
func (s *Server) queryStateFor(j *job) (*queryState, error) {
	j.queryMu.Lock()
	defer j.queryMu.Unlock()
	if j.query != nil {
		return j.query, nil
	}
	var (
		prog *mahjong.Program
		err  error
	)
	if j.spec.IR != "" {
		prog, err = mahjong.ParseProgram("query", j.spec.IR)
	} else {
		prog, err = mahjong.GenerateBenchmark(j.spec.Benchmark)
	}
	if err != nil {
		return nil, err
	}
	j.query = &queryState{prog: prog, cg: cha.CHA(prog)}
	return j.query, nil
}

// queryBudget resolves the demand solve's work cap (0 = default,
// negative = unlimited).
func (s *Server) queryBudget() int64 {
	switch b := s.cfg.QueryBudget; {
	case b == 0:
		return defaultQueryBudget
	case b < 0:
		return 0
	default:
		return b
	}
}

// queryVars resolves the spec's variable names against prog.
func queryVars(prog *mahjong.Program, spec querySpec) ([]*lang.Var, error) {
	names := spec.Alias
	if spec.Var != "" {
		names = []string{spec.Var}
	}
	out := make([]*lang.Var, 0, len(names))
	for _, name := range names {
		v := findVar(prog, name)
		if v == nil {
			return nil, qerrf(http.StatusNotFound, "no variable %q in the program", name)
		}
		out = append(out, v)
	}
	return out, nil
}

// assembleAnswer renders a points-to or alias answer from res.
func assembleAnswer(jobID, source string, complete bool, res *pta.Result, prog *mahjong.Program, spec querySpec) (*queryAnswer, error) {
	vars, err := queryVars(prog, spec)
	if err != nil {
		return nil, err
	}
	ans := &queryAnswer{Job: jobID, Source: source, Complete: complete}
	if spec.Var != "" {
		v := vars[0]
		ans.Var = v.String()
		ans.Objects = []string{}
		for _, o := range res.VarObjs(v) {
			ans.Objects = append(ans.Objects, o.String())
		}
		sort.Strings(ans.Objects)
		for _, t := range res.VarTypes(v) {
			ans.Types = append(ans.Types, t.Name)
		}
		return ans, nil
	}
	in := make(map[*pta.Obj]bool)
	for _, o := range res.VarObjs(vars[0]) {
		in[o] = true
	}
	ans.Overlap = []string{}
	for _, o := range res.VarObjs(vars[1]) {
		if in[o] {
			ans.Overlap = append(ans.Overlap, o.String())
		}
	}
	sort.Strings(ans.Overlap)
	aliased := len(ans.Overlap) > 0
	ans.Alias = &aliased
	return ans, nil
}
