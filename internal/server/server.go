// Package server implements mahjongd: a long-running analysis service
// wrapping the Mahjong pipeline. Programs (textual IR or built-in
// benchmark names) are submitted as asynchronous jobs, executed on a
// bounded worker pool under per-job deadlines (context cancellation is
// threaded down to the solver worklist and the parallel merge workers),
// and their results — points-to sets, call graphs, may-fail casts, poly
// call sites — are served from completed jobs. Built abstractions are
// cached by content hash of the canonical IR, so repeated analyses of
// the same program skip the pre-analysis + merge entirely.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"time"

	"mahjong"
	"mahjong/internal/clients"
	"mahjong/internal/export"
	"mahjong/internal/lang"
)

// Config tunes a Server.
type Config struct {
	// Workers is the worker-pool size; 0 = 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue rejects
	// submissions with 503. 0 = 64.
	QueueDepth int
	// DefaultTimeout is the per-job deadline applied when a submission
	// does not set timeout_ms; 0 = no deadline.
	DefaultTimeout time.Duration
	// CacheEntries caps the abstraction cache; 0 = 64, negative = unbounded.
	CacheEntries int
}

// Server is the analysis daemon. It implements http.Handler; create
// one with New and release its workers with Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	store   *jobStore
	queue   chan *job
	cache   *absCache
	metrics *metrics
	quit    chan struct{}
	stop    func()
	done    chan struct{}
}

// New returns a Server with its worker pool started.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cacheCap := cfg.CacheEntries
	if cacheCap == 0 {
		cacheCap = 64
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		store:   newJobStore(),
		queue:   make(chan *job, cfg.QueueDepth),
		cache:   newAbsCache(cacheCap),
		metrics: &metrics{},
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.routes()
	workerDone := make(chan struct{})
	running := cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			s.worker()
			workerDone <- struct{}{}
		}()
	}
	go func() {
		for ; running > 0; running-- {
			<-workerDone
		}
		close(s.done)
	}()
	var closeOnce sync.Once
	s.stop = func() { closeOnce.Do(func() { close(s.quit) }) }
	return s
}

// Close stops the worker pool after in-flight jobs finish; queued jobs
// are abandoned in state "queued".
func (s *Server) Close() {
	s.stop()
	<-s.done
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/pointsto", s.handlePointsTo)
	s.mux.HandleFunc("GET /jobs/{id}/callgraph", s.handleCallGraph)
	s.mux.HandleFunc("GET /jobs/{id}/casts", s.handleCasts)
	s.mux.HandleFunc("GET /jobs/{id}/polycalls", s.handlePolyCalls)
	s.mux.HandleFunc("GET /jobs/{id}/abstraction", s.handleAbstraction)
}

// ---- submission ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	var prog *mahjong.Program
	switch {
	case spec.IR != "" && spec.Benchmark != "":
		httpError(w, http.StatusBadRequest, "set either ir or benchmark, not both")
		return
	case spec.IR == "" && spec.Benchmark == "":
		httpError(w, http.StatusBadRequest, "missing program: set ir or benchmark (available: %v)", mahjong.BenchmarkNames())
		return
	case spec.IR != "":
		p, err := mahjong.ParseProgram("submission", spec.IR)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid IR: %v", err)
			return
		}
		prog = p
	default:
		if !slices.Contains(mahjong.BenchmarkNames(), spec.Benchmark) {
			httpError(w, http.StatusBadRequest, "unknown benchmark %q (available: %v)", spec.Benchmark, mahjong.BenchmarkNames())
			return
		}
	}
	if !mahjong.ValidAnalysis(spec.Analysis) {
		httpError(w, http.StatusBadRequest, "unknown analysis %q", spec.Analysis)
		return
	}
	switch mahjong.HeapKind(defaulted(spec.Heap, string(mahjong.HeapMahjong))) {
	case mahjong.HeapAllocSite, mahjong.HeapAllocType, mahjong.HeapMahjong:
	default:
		httpError(w, http.StatusBadRequest, "unknown heap kind %q", spec.Heap)
		return
	}
	if spec.TimeoutMS < 0 || spec.BudgetWork < 0 {
		httpError(w, http.StatusBadRequest, "timeout_ms and budget_work must be non-negative")
		return
	}

	j := s.store.add(spec, prog)
	select {
	case s.queue <- j:
	default:
		s.metrics.jobsRejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.QueueDepth)
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, j.view())
}

// ---- worker pool ----

func (s *Server) worker() {
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.metrics.jobsRunning.Add(1)
	err := s.execute(ctx, j)
	s.metrics.jobsRunning.Add(-1)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		s.metrics.jobsCompleted.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = err.Error()
		s.metrics.jobsCancelled.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.metrics.jobsFailed.Add(1)
	}
}

// execute runs the job's pipeline under ctx and stores results on j.
// Writes to j.prog/abs/rep happen-before the terminal state transition
// in runJob, which is what status handlers synchronize on.
func (s *Server) execute(ctx context.Context, j *job) error {
	prog := j.prog
	if prog == nil {
		p, err := mahjong.GenerateBenchmark(j.spec.Benchmark)
		if err != nil {
			return err
		}
		prog = p
		j.mu.Lock()
		j.prog = p
		j.mu.Unlock()
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	cfg := mahjong.Config{
		Analysis:   j.spec.Analysis,
		Heap:       mahjong.HeapKind(defaulted(j.spec.Heap, string(mahjong.HeapMahjong))),
		BudgetWork: j.spec.BudgetWork,
	}
	if cfg.Heap == mahjong.HeapMahjong {
		abs, hit, err := s.abstractionFor(ctx, prog)
		if err != nil {
			return err
		}
		cfg.Abstraction = abs
		j.mu.Lock()
		j.abs = abs
		j.cacheHit = hit
		j.mu.Unlock()
	}

	rep, err := mahjong.AnalyzeContext(ctx, prog, cfg)
	if err != nil {
		return err
	}
	s.metrics.solverWork.Add(rep.Work)
	s.metrics.analysisNS.Add(rep.Time.Nanoseconds())
	s.metrics.solverPropagated.Add(rep.Solver.PropagatedBits)
	s.metrics.solverSCCs.Add(int64(rep.Solver.CollapsedSCCs))
	s.metrics.solverSCCNodes.Add(int64(rep.Solver.CollapsedNodes))
	s.metrics.solverMaskHits.Add(rep.Solver.FilterMaskHits)
	j.mu.Lock()
	j.rep = rep
	j.mu.Unlock()
	return nil
}

// abstractionFor returns prog's Mahjong abstraction, via the cache when
// an identical program (by canonical-IR content hash) was built before.
// Cache hits rebind the persisted equivalence classes to prog's own
// allocation sites through the core persistence layer.
func (s *Server) abstractionFor(ctx context.Context, prog *mahjong.Program) (*mahjong.Abstraction, bool, error) {
	key := cacheKey(mahjong.PrintProgram(prog))
	var built *mahjong.Abstraction
	data, hit, err := s.cache.getOrFill(ctx, key, func() ([]byte, error) {
		abs, err := mahjong.BuildAbstractionContext(ctx, prog, mahjong.AbstractionOptions{})
		if err != nil {
			return nil, err
		}
		s.metrics.preNS.Add(abs.PreTime.Nanoseconds())
		s.metrics.fpgNS.Add(abs.FPGTime.Nanoseconds())
		s.metrics.mergeNS.Add(abs.ModelTime.Nanoseconds())
		var buf bytes.Buffer
		if err := abs.Save(&buf); err != nil {
			return nil, err
		}
		built = abs
		return buf.Bytes(), nil
	})
	if err != nil {
		return nil, false, err
	}
	if !hit && built != nil {
		s.metrics.cacheMisses.Add(1)
		return built, false, nil
	}
	s.metrics.cacheHits.Add(1)
	abs, err := mahjong.LoadAbstraction(bytes.NewReader(data), prog)
	if err != nil {
		return nil, false, fmt.Errorf("rebinding cached abstraction: %w", err)
	}
	return abs, true, nil
}

// ---- status and control ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(len(s.queue), s.cache.len())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, snap)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.store.list()
	views := make([]view, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled before execution"
		j.finished = time.Now()
		s.metrics.jobsCancelled.Add(1)
	case StateRunning:
		j.cancel() // the worker records the terminal state
	default:
		state := j.state
		j.mu.Unlock()
		httpError(w, http.StatusConflict, "job %s already %s", j.id, state)
		return
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.view())
}

// ---- queries against completed jobs ----

// completedJob resolves {id} to a done job or writes the error (404 for
// unknown IDs, 409 for jobs not yet — or never — completing).
func (s *Server) completedJob(w http.ResponseWriter, r *http.Request) *job {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return nil
	}
	if _, _, err := j.ready(); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return nil
	}
	return j
}

func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, prog, _ := j.ready()
	spec := r.URL.Query().Get("var")
	if spec == "" {
		httpError(w, http.StatusBadRequest, "missing ?var= (format: Class.method/arity#name)")
		return
	}
	v := findVar(prog, spec)
	if v == nil {
		httpError(w, http.StatusNotFound, "no variable %q in the analyzed program", spec)
		return
	}
	type objJSON struct {
		Label  string `json:"label"`
		Type   string `json:"type"`
		Merged bool   `json:"merged"`
	}
	res := rep.Result()
	objs := res.VarObjs(v)
	out := struct {
		Var     string    `json:"var"`
		Objects []objJSON `json:"objects"`
		Types   []string  `json:"types"`
	}{Var: v.String(), Objects: []objJSON{}}
	for _, o := range objs {
		out.Objects = append(out.Objects, objJSON{Label: o.String(), Type: o.Type.Name, Merged: o.Merged})
	}
	for _, t := range res.VarTypes(v) {
		out.Types = append(out.Types, t.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCallGraph(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, _, _ := j.ready()
	switch format := r.URL.Query().Get("format"); format {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		if err := export.CallGraphDOT(w, rep.Result()); err != nil {
			httpError(w, http.StatusInternalServerError, "exporting call graph: %v", err)
		}
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := export.CallGraphJSON(w, rep.Result()); err != nil {
			httpError(w, http.StatusInternalServerError, "exporting call graph: %v", err)
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or dot)", format)
	}
}

func (s *Server) handleCasts(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, _, _ := j.ready()
	type castJSON struct {
		Method string `json:"method"`
		Stmt   string `json:"stmt"`
		Target string `json:"target"`
	}
	out := struct {
		MayFailCasts []castJSON `json:"may_fail_casts"`
	}{MayFailCasts: []castJSON{}}
	for _, c := range clients.MayFailCasts(rep.Result()) {
		out.MayFailCasts = append(out.MayFailCasts, castJSON{
			Method: c.LHS.Method.String(),
			Stmt:   c.String(),
			Target: c.Type.Name,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePolyCalls(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, _, _ := j.ready()
	type siteJSON struct {
		Site    string   `json:"site"`
		Stmt    string   `json:"stmt"`
		Targets []string `json:"targets"`
	}
	res := rep.Result()
	out := struct {
		PolyCallSites []siteJSON `json:"poly_call_sites"`
	}{PolyCallSites: []siteJSON{}}
	for _, inv := range clients.PolyCallSites(res) {
		sj := siteJSON{Site: inv.Label(), Stmt: inv.String()}
		for _, m := range res.CallTargets(inv) {
			sj.Targets = append(sj.Targets, m.String())
		}
		out.PolyCallSites = append(out.PolyCallSites, sj)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAbstraction(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	abs := j.abs
	j.mu.Unlock()
	if abs == nil {
		httpError(w, http.StatusNotFound, "job %s did not build a Mahjong abstraction (heap=%s)",
			j.id, defaulted(j.spec.Heap, string(mahjong.HeapMahjong)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := abs.Save(w); err != nil {
		httpError(w, http.StatusInternalServerError, "persisting abstraction: %v", err)
	}
}

// findVar resolves "Class.method/arity#name" against the program.
func findVar(prog *mahjong.Program, spec string) *lang.Var {
	for _, m := range prog.Methods {
		for _, v := range m.Locals {
			if v.String() == spec {
				return v
			}
		}
	}
	return nil
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort; client may have gone away
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
