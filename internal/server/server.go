// Package server implements mahjongd: a long-running analysis service
// wrapping the Mahjong pipeline. Programs (textual IR or built-in
// benchmark names) are submitted as asynchronous jobs, executed on a
// bounded worker pool under per-job deadlines (context cancellation is
// threaded down to the solver worklist and the parallel merge workers),
// and their results — points-to sets, call graphs, may-fail casts, poly
// call sites — are served from completed jobs. Built abstractions are
// cached by content hash of the canonical IR, so repeated analyses of
// the same program skip the pre-analysis + merge entirely.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mahjong"
	"mahjong/internal/clients"
	"mahjong/internal/export"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/sched"
	"mahjong/internal/trace"
)

// Config tunes a Server.
type Config struct {
	// Workers is the worker-pool size; 0 = 2.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue rejects
	// submissions with 429 + Retry-After. 0 = 64.
	QueueDepth int
	// NoAdmission disables wait-estimate admission control: submissions
	// are then rejected only when the queue is at capacity or the server
	// is shutting down. Admission control is on by default — a job whose
	// estimated queue wait already exceeds its deadline is rejected with
	// 429 instead of burning a queue slot it cannot use.
	NoAdmission bool
	// ClassQuotas caps concurrent jobs per scheduling class (priority
	// order interactive, incremental, batch); 0 = uncapped. Quotas are
	// work-conserving: a class at quota yields to other pending classes
	// but still runs when nothing else is waiting.
	ClassQuotas [sched.NumClasses]int
	// AutodegradeWait is the degradation-ladder threshold: when a new
	// batch job's estimated queue wait exceeds it, the job is downgraded
	// to the alloc-site abstraction at admission (cheaper, still sound)
	// before the server resorts to rejection. 0 disables the ladder.
	AutodegradeWait time.Duration
	// DefaultTimeout is the per-job deadline applied when a submission
	// does not set timeout_ms; 0 = no deadline.
	DefaultTimeout time.Duration
	// CacheEntries caps the abstraction cache; 0 = 64, negative = unbounded.
	CacheEntries int
	// ShutdownGrace bounds how long Close waits for in-flight jobs
	// before cancelling them; 0 = 5s, negative = wait forever.
	ShutdownGrace time.Duration
	// MaxProgramBytes caps the POST /jobs request body; 0 = 8 MiB.
	MaxProgramBytes int64
	// Budget is the default per-job resource budget (zero = unlimited);
	// submissions may override individual limits.
	Budget mahjong.ResourceBudget
	// NoDegrade disables the allocation-site fallback for jobs that do
	// not set "degrade" explicitly (degradation defaults to on).
	NoDegrade bool
	// SlowJob, when positive, logs the span tree of every job whose
	// execution takes at least this long; 0 disables the slow-job log.
	SlowJob time.Duration
	// SlowJobLog receives slow-job span trees; nil = os.Stderr. Writes
	// are whole trees (one Write call each), so any io.Writer whose
	// Write is atomic works concurrently.
	SlowJobLog io.Writer
	// DeltaStates caps how many completed jobs keep their analysis state
	// retained for incremental (base_job_id) resubmissions; 0 = 4,
	// negative = unbounded. States are heavyweight (program + saturated
	// pre-analysis + merge decisions), so the default is small.
	DeltaStates int
	// QueryBudget caps the propagation work of the demand solve behind
	// POST /jobs/{id}/query; 0 = 200k units, negative = unlimited.
	QueryBudget int64
	// SolverWorkers parallelizes each job's points-to solves (the
	// pre-analysis and the main analysis) across sharded worker
	// goroutines: 0 or 1 keep the sequential solver, N >= 2 uses N
	// workers per solve, negative = GOMAXPROCS. Job results are
	// identical for every setting; see docs/PARALLEL.md. Note the pool
	// multiplies: Workers jobs in flight each spawn their own solver
	// shards.
	SolverWorkers int
	// Renumber lays each solve's objects out contiguously by class so
	// type-filtered propagation becomes a word-range intersection. Job
	// results are identical.
	Renumber bool
}

// maxTimeoutMS caps timeout_ms at 24 hours: beyond that a "timeout" is
// an absurd value (likely a unit confusion) rather than a deadline.
const maxTimeoutMS = int64(24 * time.Hour / time.Millisecond)

// Server is the analysis daemon. It implements http.Handler; create
// one with New and release its workers with Close.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	store   *jobStore
	schedq  *sched.Queue
	cache   *absCache
	deltas  *deltaStore
	metrics *metrics
	quit    chan struct{}
	stop    func()
	done    chan struct{}

	// baseCtx is the root every job context derives from; cancelBase is
	// the final step of the shutdown drain. Deriving jobs from a
	// server-lifetime context (instead of a detached context.Background
	// per job) guarantees Close cancels ALL in-flight work — including a
	// job that races into a worker between the queue drain and the
	// per-job cancelRunning sweep, which previously kept an uncancellable
	// context and could stall Close indefinitely.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// closing flips once Close begins: submissions are rejected with a
	// retriable 503 while in-flight jobs drain.
	closing atomic.Bool
}

// New returns a Server with its worker pool started.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cacheCap := cfg.CacheEntries
	if cacheCap == 0 {
		cacheCap = 64
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		store:   newJobStore(),
		cache:   newAbsCache(cacheCap),
		deltas:  newDeltaStore(cfg.DeltaStates),
		metrics: newMetrics(),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.schedq = sched.New(sched.Config{
		Capacity: cfg.QueueDepth,
		Workers:  cfg.Workers,
		Quotas:   cfg.ClassQuotas,
		OnExpire: s.shedExpired,
	})
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background()) //lint:allow ctxflow server-lifetime root created once at construction; every job context derives from it so Close cancels in-flight work
	s.routes()
	workerDone := make(chan struct{})
	running := cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			s.worker()
			workerDone <- struct{}{}
		}()
	}
	go func() {
		for ; running > 0; running-- {
			<-workerDone
		}
		close(s.done)
	}()
	var closeOnce sync.Once
	s.stop = func() { closeOnce.Do(s.shutdown) }
	return s
}

// Close shuts the server down gracefully: new submissions are rejected
// with a retriable 503, queued-but-unstarted jobs are failed as
// retriable, in-flight jobs get Config.ShutdownGrace to finish and are
// then cancelled, and finally the worker pool exits. Close returns once
// every worker has stopped.
func (s *Server) Close() {
	s.stop()
	<-s.done
	// Workers are gone. The scheduler was closed by shutdown, so no
	// submission can race new work in (Push returns ErrClosed); release
	// the base context, which with a negative ShutdownGrace — wait
	// forever — is still live.
	s.cancelBase()
}

// shutdown implements the drain sequence (runs once, via s.stop).
func (s *Server) shutdown() {
	s.closing.Store(true)
	// Closing the scheduler stops intake (later Pushes get ErrClosed),
	// hands back every still-pending job to be failed as retriable, and
	// lets each worker exit after its current job.
	s.failQueued(s.schedq.Close())
	grace := s.cfg.ShutdownGrace
	if grace == 0 {
		grace = 5 * time.Second
	}
	if grace > 0 {
		select {
		case <-s.done: // every worker finished and exited
		case <-time.After(grace):
		}
		// Grace expired (or everything drained): cancel whatever is
		// still running so the workers can exit promptly. The solver and
		// merge workers poll their context, so cancellation propagates.
		// cancelBase closes the base context under every job — including
		// one that raced into a worker after the cancelRunning sweep.
		s.cancelRunning()
		s.cancelBase()
	}
	close(s.quit)
}

// failQueued fails each not-yet-started job the scheduler drain handed
// back as retriable: on a dying server "queued" would otherwise be a
// forever state, and the same submission succeeds on a live server.
func (s *Server) failQueued(items []*sched.Item) {
	for _, it := range items {
		j, ok := it.Payload.(*job)
		if !ok {
			continue
		}
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateFailed
			j.retriable = true
			j.errMsg = "server shutting down before the job started; retry against a live server"
			j.finished = time.Now()
			s.metrics.jobsFailed.Add(1)
		}
		j.mu.Unlock()
		s.finishQueueWait(j, errors.New("server shutting down"))
	}
}

// shedExpired is the scheduler's OnExpire callback: the job's deadline
// ran out while it was still waiting for a worker, so it is failed here
// — terminal immediately, queue slot already released — without ever
// touching the solver.
func (s *Server) shedExpired(it *sched.Item) {
	j, ok := it.Payload.(*job)
	if !ok {
		return
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.errMsg = "deadline expired while queued; job shed before execution"
		j.finished = time.Now()
		s.metrics.jobsCancelled.Add(1)
		s.metrics.jobsShed.Add(1)
	}
	j.mu.Unlock()
	s.finishQueueWait(j, context.DeadlineExceeded)
}

// finishQueueWait ends the job's queued phase: the server.queue span is
// closed (tagged with cause's failure class) and its snapshot feeds the
// stage-duration histograms plus the queue-wait histogram. Idempotent —
// dequeue, shed, client cancel and shutdown drain all call it, first
// one wins.
func (s *Server) finishQueueWait(j *job, cause error) {
	snap, wait := j.closeQueueSpan(cause)
	if snap == nil {
		return
	}
	s.metrics.observeTrace(snap)
	s.metrics.observeQueueWait(wait)
}

// cancelRunning cancels the context of every running job.
func (s *Server) cancelRunning() {
	for _, j := range s.store.list() {
		j.mu.Lock()
		if j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
}

// ServeHTTP implements http.Handler. A panic in a handler is recovered
// into a 500 (per-request isolation; http.ErrAbortHandler passes
// through as the net/http-sanctioned abort).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel comparison per net/http docs
				panic(rec)
			}
			s.metrics.panicsRecovered.Add(1)
			httpError(w, http.StatusInternalServerError, "internal error: %v", rec)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /jobs/{id}/pointsto", s.handlePointsTo)
	s.mux.HandleFunc("GET /jobs/{id}/callgraph", s.handleCallGraph)
	s.mux.HandleFunc("GET /jobs/{id}/casts", s.handleCasts)
	s.mux.HandleFunc("GET /jobs/{id}/polycalls", s.handlePolyCalls)
	s.mux.HandleFunc("GET /jobs/{id}/abstraction", s.handleAbstraction)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
}

// ---- submission ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		s.metrics.jobsRejected.Add(1)
		httpReject(w, http.StatusServiceUnavailable, time.Second, "server is shutting down; retry against a live server")
		return
	}
	maxBytes := s.cfg.MaxProgramBytes
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	var prog *mahjong.Program
	switch {
	case spec.IR != "" && spec.Benchmark != "":
		httpError(w, http.StatusBadRequest, "set either ir or benchmark, not both")
		return
	case spec.IR == "" && spec.Benchmark == "":
		httpError(w, http.StatusBadRequest, "missing program: set ir or benchmark (available: %v)", mahjong.BenchmarkNames())
		return
	case spec.IR != "":
		p, err := mahjong.ParseProgram("submission", spec.IR)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid IR: %v", err)
			return
		}
		prog = p
	default:
		if !slices.Contains(mahjong.BenchmarkNames(), spec.Benchmark) {
			httpError(w, http.StatusBadRequest, "unknown benchmark %q (available: %v)", spec.Benchmark, mahjong.BenchmarkNames())
			return
		}
	}
	if !mahjong.ValidAnalysis(spec.Analysis) {
		httpError(w, http.StatusBadRequest, "unknown analysis %q", spec.Analysis)
		return
	}
	switch mahjong.HeapKind(defaulted(spec.Heap, string(mahjong.HeapMahjong))) {
	case mahjong.HeapAllocSite, mahjong.HeapAllocType, mahjong.HeapMahjong:
	default:
		httpError(w, http.StatusBadRequest, "unknown heap kind %q", spec.Heap)
		return
	}
	if spec.TimeoutMS < 0 || spec.BudgetWork < 0 {
		httpError(w, http.StatusBadRequest, "timeout_ms and budget_work must be non-negative")
		return
	}
	if spec.TimeoutMS > maxTimeoutMS {
		httpError(w, http.StatusBadRequest, "timeout_ms %d exceeds the maximum of %d (24h)", spec.TimeoutMS, maxTimeoutMS)
		return
	}
	if spec.BudgetFacts < 0 || spec.BudgetWords < 0 || spec.BudgetPairs < 0 {
		httpError(w, http.StatusBadRequest, "budget_facts, budget_words and budget_pairs must be non-negative")
		return
	}
	if spec.BaseJobID != "" && mahjong.HeapKind(defaulted(spec.Heap, string(mahjong.HeapMahjong))) != mahjong.HeapMahjong {
		httpError(w, http.StatusBadRequest, "base_job_id requires the mahjong heap (got %q)", spec.Heap)
		return
	}
	class, ok := classFor(spec)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown class %q (want interactive, incremental or batch)", spec.Class)
		return
	}

	// Absolute deadline, fixed at submission: queue wait counts against
	// it, so a job cannot spend its whole budget waiting and then start a
	// doomed solve.
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}

	// Admission control: estimate this class's queue wait and reject the
	// job if it already exceeds the deadline — the client learns "try
	// later" now instead of a deadline failure after queueing. The
	// StageAdmit seam fires inside; a fault there rejects this one
	// submission as retriable and leaves intake healthy.
	est, aerr := s.admitCheck(class)
	if aerr != nil {
		s.metrics.jobsRejected.Add(1)
		httpReject(w, http.StatusServiceUnavailable, time.Second, "admission check failed: %v", aerr)
		return
	}
	if !s.cfg.NoAdmission && !deadline.IsZero() && est > time.Until(deadline) {
		s.metrics.jobsRejected.Add(1)
		s.metrics.rejectedWait.Add(1)
		httpReject(w, http.StatusTooManyRequests, est, "estimated queue wait %v exceeds the job deadline; retry later", est.Round(time.Millisecond))
		return
	}
	// Degradation ladder: a batch job facing a long (but survivable)
	// wait runs on the cheaper alloc-site abstraction instead of adding
	// a full Mahjong build to an already-loaded queue.
	autoDegrade := s.cfg.AutodegradeWait > 0 && est > s.cfg.AutodegradeWait &&
		class == sched.Batch && s.degradeEnabled(spec) &&
		mahjong.HeapKind(defaulted(spec.Heap, string(mahjong.HeapMahjong))) == mahjong.HeapMahjong &&
		spec.BaseJobID == ""

	j := s.store.add(spec, prog, class, deadline)
	it := &sched.Item{Class: class, Deadline: deadline, Payload: j}
	j.mu.Lock()
	j.qitem = it
	j.qtr = trace.New()
	j.qspan = j.qtr.Root().Start(faultinject.StageQueue)
	if autoDegrade {
		j.autoDegraded = true
		j.degraded = true
		j.degradedCause = fmt.Sprintf("auto-degraded at admission: estimated queue wait %v exceeded the %v threshold",
			est.Round(time.Millisecond), s.cfg.AutodegradeWait)
	}
	j.mu.Unlock()
	if err := s.schedq.Push(it); err != nil {
		// The job is already visible in the store: give it a terminal
		// state so it cannot linger as a zombie "queued" entry.
		j.mu.Lock()
		j.state = StateFailed
		j.retriable = true
		j.errMsg = "rejected at submission: " + err.Error()
		j.finished = time.Now()
		j.mu.Unlock()
		s.finishQueueWait(j, err)
		s.metrics.jobsRejected.Add(1)
		if errors.Is(err, sched.ErrClosed) {
			httpReject(w, http.StatusServiceUnavailable, time.Second, "server is shutting down; retry against a live server")
			return
		}
		s.metrics.rejectedFull.Add(1)
		httpReject(w, http.StatusTooManyRequests, retryAfterFor(est), "job queue full (%d pending)", s.cfg.QueueDepth)
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	if autoDegrade {
		s.metrics.jobsAutodegraded.Add(1)
	}
	if spec.BaseJobID != "" {
		s.metrics.deltaJobs.Add(1)
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// classFor resolves a submission's scheduling class: an explicit class
// wins; otherwise base_job_id resubmits default to incremental and
// everything else to interactive.
func classFor(spec JobSpec) (sched.Class, bool) {
	if spec.Class == "" {
		if spec.BaseJobID != "" {
			return sched.Incremental, true
		}
		return sched.Interactive, true
	}
	return sched.ParseClass(spec.Class)
}

// admitCheck runs the admission-control probe: the StageAdmit fault
// seam plus the scheduler's wait estimate. It is its own failure
// boundary — a panic injected (or real) here rejects the one submission
// instead of killing the intake handler.
func (s *Server) admitCheck(class sched.Class) (est time.Duration, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = failure.AsInternal(faultinject.StageAdmit, rec)
		}
		s.noteFailure(err)
	}()
	if err := faultinject.Fire(faultinject.StageAdmit); err != nil {
		return 0, fmt.Errorf("admission: %w", err)
	}
	return s.schedq.EstimatedWait(class), nil
}

// retryAfterFor turns a wait estimate into a Retry-After duration with
// a 1s floor (clients treat 0 as "immediately", which under overload
// just hammers the server).
func retryAfterFor(est time.Duration) time.Duration {
	if est < time.Second {
		return time.Second
	}
	return est
}

// ---- worker pool ----

func (s *Server) worker() {
	for {
		it, ok := s.schedq.Pop()
		if !ok { // scheduler closed: shutdown
			return
		}
		s.serve(it)
	}
}

// serve runs one popped item and returns its per-class in-flight slot.
// The release is deferred: if anything under runJob panics past its
// recover seams, the slot still comes back during unwinding — a leaked
// slot would permanently shrink the class's concurrency share and
// silently starve admission control.
func (s *Server) serve(it *sched.Item) {
	j, isJob := it.Payload.(*job)
	if !isJob {
		s.schedq.Done(it.Class, 0)
		return
	}
	start := time.Now()
	// Report the observed service time back to the scheduler: it feeds
	// the per-class EWMA that admission control and the degradation
	// ladder estimate queue waits from.
	defer func() { s.schedq.Done(it.Class, time.Since(start)) }()
	s.runJob(j)
}

func (s *Server) runJob(j *job) {
	s.finishQueueWait(j, nil)
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	// The job context derives from the server's base context: per-job
	// deadlines and explicit cancels work as before, and shutdown's
	// cancelBase reaches every in-flight job even if it raced past the
	// drain (a detached context.Background here escaped graceful
	// shutdown). The deadline is the absolute one fixed at submission,
	// so time spent queued counts against the job's budget.
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if !j.deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.metrics.jobsRunning.Add(1)
	err := s.executeIsolated(ctx, j)
	s.metrics.jobsRunning.Add(-1)

	j.mu.Lock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		s.metrics.jobsCompleted.Add(1)
		if j.degraded {
			s.metrics.jobsDegraded.Add(1)
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		j.errMsg = err.Error()
		s.metrics.jobsCancelled.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.metrics.jobsFailed.Add(1)
	}
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()
	if s.cfg.SlowJob > 0 && elapsed >= s.cfg.SlowJob {
		s.logSlowJob(j, elapsed)
	}
}

// logSlowJob dumps a slow job's span trees (one per attempt) to the
// configured slow-job log. The whole report goes out in a single Write
// so concurrent slow jobs do not interleave line-by-line.
func (s *Server) logSlowJob(j *job, elapsed time.Duration) {
	out := s.cfg.SlowJobLog
	if out == nil {
		out = os.Stderr
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "mahjongd: slow job %s took %v (threshold %v); span tree:\n",
		j.id, elapsed.Round(time.Millisecond), s.cfg.SlowJob)
	for i, t := range j.traceSnapshots() {
		if i > 0 {
			fmt.Fprintf(&buf, "--- attempt %d ---\n", i+1)
		}
		t.WriteTree(&buf)
	}
	out.Write(buf.Bytes()) //nolint:errcheck // best-effort diagnostics
}

// executeIsolated is the worker's outermost failure boundary: a panic
// escaping the server-side job plumbing itself (the pipeline stages
// carry their own guards) becomes a typed failure of this one job — the
// worker, the pool, and the daemon survive.
func (s *Server) executeIsolated(ctx context.Context, j *job) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = failure.AsInternal(faultinject.StageJob, rec)
		}
		s.noteFailure(err)
	}()
	// The StageQueue seam models a fault in the scheduler hand-off
	// itself (right after dequeue, before the pipeline). A panic here is
	// recovered above; faultinject.Fire already tagged it with the
	// server.queue stage, which AsInternal preserves.
	if err := faultinject.Fire(faultinject.StageQueue); err != nil {
		return fmt.Errorf("queue hand-off: %w", err)
	}
	if err := faultinject.Fire(faultinject.StageJob); err != nil {
		return fmt.Errorf("job worker: %w", err)
	}
	return s.execute(ctx, j)
}

// noteFailure records failure-classification metrics for a finished
// job: per-stage counters for internal (panic-recovered) errors, and
// the budget-exhaustion counter.
func (s *Server) noteFailure(err error) {
	if err == nil {
		return
	}
	var ie *mahjong.InternalError
	if errors.As(err, &ie) {
		s.metrics.panicsRecovered.Add(1)
		s.metrics.noteStageFailure(ie.Stage)
	}
	if errors.Is(err, mahjong.ErrBudgetExhausted) {
		s.metrics.budgetExhausted.Add(1)
	}
}

// degradeEnabled resolves a job's degrade setting against the server
// default.
func (s *Server) degradeEnabled(spec JobSpec) bool {
	if spec.Degrade != nil {
		return *spec.Degrade
	}
	return !s.cfg.NoDegrade
}

// degradable reports whether err is the kind of failure graceful
// degradation answers: an internal (panic-recovered) error or resource
// budget exhaustion. Cancellation and deadline errors are not
// degradable — the job is out of time either way.
func degradable(err error) bool {
	var ie *mahjong.InternalError
	if errors.As(err, &ie) {
		return true
	}
	return errors.Is(err, mahjong.ErrBudgetExhausted)
}

// budgetFor resolves a job's resource budget: the server default with
// per-job overrides.
func (s *Server) budgetFor(spec JobSpec) mahjong.ResourceBudget {
	b := s.cfg.Budget
	if spec.BudgetFacts > 0 {
		b.Facts = spec.BudgetFacts
	}
	if spec.BudgetWords > 0 {
		b.BitsetWords = spec.BudgetWords
	}
	if spec.BudgetPairs > 0 {
		b.MergePairs = spec.BudgetPairs
	}
	return b
}

// execute runs the job's pipeline under ctx and stores results on j.
// Writes to j.prog/abs/rep happen-before the terminal state transition
// in runJob, which is what status handlers synchronize on.
//
// Graceful degradation: when building the Mahjong abstraction — or the
// main analysis on top of it — fails with a degradable error (an
// internal panic-recovered error or resource-budget exhaustion) and
// the job allows it, the analysis re-runs on the plain allocation-site
// abstraction. That abstraction is the paper's sound baseline (Mahjong
// merges its objects; alloc-site never merges), so the degraded result
// is sound, merely less compact; the job is marked degraded with the
// original error as cause. Degraded runs build no Mahjong abstraction,
// so nothing degraded can ever enter the cache.
func (s *Server) execute(ctx context.Context, j *job) error {
	prog := j.prog
	if prog == nil {
		p, err := mahjong.GenerateBenchmark(j.spec.Benchmark)
		if err != nil {
			return err
		}
		prog = p
		j.mu.Lock()
		j.prog = p
		j.mu.Unlock()
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	degrade := s.degradeEnabled(j.spec)
	resources := s.budgetFor(j.spec)
	cfg := mahjong.Config{
		Analysis:      j.spec.Analysis,
		Heap:          mahjong.HeapKind(defaulted(j.spec.Heap, string(mahjong.HeapMahjong))),
		BudgetWork:    j.spec.BudgetWork,
		Resources:     resources,
		SolverWorkers: s.cfg.SolverWorkers,
		Renumber:      s.cfg.Renumber,
	}
	if j.autoDegraded && cfg.Heap == mahjong.HeapMahjong {
		// The admission controller already downgraded this batch job
		// (degradation ladder): run straight on the alloc-site baseline,
		// skipping the Mahjong abstraction build entirely.
		cfg.Heap = mahjong.HeapAllocSite
	}
	rep, err := s.runAttempt(ctx, j, prog, cfg, resources)
	if err != nil && degrade && degradable(err) && cfg.Heap == mahjong.HeapMahjong {
		// The Mahjong pipeline failed somewhere — abstraction build or
		// the main analysis on top of it: one more attempt on the
		// allocation-site baseline, under its own tracer so the failed
		// attempt's span tree survives untouched next to the re-run's.
		s.noteFailure(err)
		s.markDegraded(j, err)
		cfg.Heap = mahjong.HeapAllocSite
		cfg.Abstraction = nil
		rep, err = s.runAttempt(ctx, j, prog, cfg, resources)
	}
	if err != nil {
		return err
	}
	s.metrics.solverWork.Add(rep.Work)
	s.metrics.analysisNS.Add(rep.Time.Nanoseconds())
	s.metrics.solverPropagated.Add(rep.Solver.PropagatedBits)
	s.metrics.solverSCCs.Add(int64(rep.Solver.CollapsedSCCs))
	s.metrics.solverSCCNodes.Add(int64(rep.Solver.CollapsedNodes))
	s.metrics.solverMaskHits.Add(rep.Solver.FilterMaskHits)
	j.mu.Lock()
	j.rep = rep
	j.mu.Unlock()
	return nil
}

// runAttempt executes one full pipeline attempt — abstraction (when
// cfg.Heap is mahjong) plus the main analysis — under its own tracer
// rooted at a server.job span. The attempt's span tree is snapshotted
// onto the job and fed to the stage-duration histograms no matter how
// the attempt ends, so a degraded re-run appends a second trace instead
// of corrupting the first.
func (s *Server) runAttempt(ctx context.Context, j *job, prog *mahjong.Program, cfg mahjong.Config, resources mahjong.ResourceBudget) (rep *mahjong.Report, err error) {
	tr := trace.New()
	root := tr.Root().Start(faultinject.StageJob)
	defer func() {
		root.Close(err)
		snap := tr.Snapshot()
		j.addTrace(snap)
		s.metrics.observeTrace(snap)
	}()
	cfg.Trace = root.Ctx()
	if cfg.Heap == mahjong.HeapMahjong {
		abs, hit, aerr := s.abstractionFor(ctx, j, prog, resources, root.Ctx())
		if aerr != nil {
			return nil, aerr
		}
		cfg.Abstraction = abs
		j.mu.Lock()
		j.abs = abs
		j.cacheHit = hit
		j.mu.Unlock()
	}
	return mahjong.AnalyzeContext(ctx, prog, cfg)
}

// markDegraded records that j fell back to the allocation-site
// abstraction because of cause.
func (s *Server) markDegraded(j *job, cause error) {
	j.mu.Lock()
	j.degraded = true
	j.degradedCause = cause.Error()
	j.abs = nil // a partial abstraction must not serve query endpoints
	j.mu.Unlock()
}

// abstractionFor returns prog's Mahjong abstraction, via the cache when
// an identical program (by canonical-IR content hash) was built before.
// Cache hits rebind the persisted equivalence classes to prog's own
// allocation sites through the core persistence layer.
//
// A cached entry whose bytes fail to rebind (corruption) is quarantined
// — evicted so it cannot poison later jobs — and the abstraction is
// rebuilt from scratch once. Failed builds are never cached (getOrFill
// drops the entry), so degraded or poisoned results cannot enter the
// cache.
//
// Every actually-built abstraction also deposits its DeltaState in the
// retention store under the job's ID, making the job a valid
// base_job_id for later submissions; when j itself names a base with a
// retained state, the build runs incrementally against it. An
// incremental build returns the same abstraction a cold build would
// (BuildAbstractionDelta's equivalence contract), so caching its bytes
// is as safe as caching a cold build's — and fallbacks (missing base,
// shape change, injected delta faults) only cost the warm start, with
// the reason recorded on the job.
func (s *Server) abstractionFor(ctx context.Context, j *job, prog *mahjong.Program, resources mahjong.ResourceBudget, tc trace.Ctx) (*mahjong.Abstraction, bool, error) {
	key := cacheKey(mahjong.PrintProgram(prog))
	for attempt := 0; ; attempt++ {
		var built *mahjong.Abstraction
		data, hit, err := s.cache.getOrFill(ctx, key, func() ([]byte, error) {
			var base *mahjong.DeltaState
			baseReason := ""
			if j.spec.BaseJobID != "" {
				if base = s.deltas.get(j.spec.BaseJobID); base == nil {
					baseReason = fmt.Sprintf("no retained state for base job %q", j.spec.BaseJobID)
				}
			}
			abs, next, out, err := mahjong.BuildAbstractionDelta(ctx, prog, mahjong.AbstractionOptions{
				Resources:     resources,
				Trace:         tc,
				SolverWorkers: s.cfg.SolverWorkers,
				Renumber:      s.cfg.Renumber,
			}, base)
			if err != nil {
				return nil, err
			}
			s.deltas.put(j.id, next)
			if j.spec.BaseJobID != "" {
				if baseReason == "" {
					baseReason = out.Fallback
				}
				j.mu.Lock()
				j.deltaUsed = out.Used
				j.deltaReason = baseReason
				j.mu.Unlock()
				if out.Used {
					s.metrics.deltaWarm.Add(1)
				} else {
					s.metrics.deltaFallbacks.Add(1)
				}
			}
			s.metrics.preNS.Add(abs.PreTime.Nanoseconds())
			s.metrics.fpgNS.Add(abs.FPGTime.Nanoseconds())
			s.metrics.mergeNS.Add(abs.ModelTime.Nanoseconds())
			var buf bytes.Buffer
			if err := abs.Save(&buf); err != nil {
				return nil, err
			}
			built = abs
			return buf.Bytes(), nil
		})
		if err != nil {
			return nil, false, err
		}
		if !hit && built != nil {
			s.metrics.cacheMisses.Add(1)
			return built, false, nil
		}
		s.metrics.cacheHits.Add(1)
		if j.spec.BaseJobID != "" {
			// Served from the abstraction cache: nothing was solved, so
			// the delta machinery never ran (and this job retains no state
			// of its own).
			j.mu.Lock()
			j.deltaUsed = false
			j.deltaReason = "abstraction served from cache"
			j.mu.Unlock()
			s.metrics.deltaFallbacks.Add(1)
		}
		abs, err := loadCachedAbstraction(tc, data, prog)
		if err == nil {
			return abs, true, nil
		}
		s.metrics.noteStageFailure(faultinject.StageCacheLoad)
		if s.cache.quarantine(key) {
			s.metrics.cacheQuarantined.Add(1)
		}
		if attempt > 0 {
			return nil, false, fmt.Errorf("rebinding cached abstraction: %w", err)
		}
		// First corruption for this job: the poisoned entry is gone;
		// loop to rebuild from scratch.
	}
}

// loadCachedAbstraction rebinds cached abstraction bytes to prog under
// their own trace span. The fault-injection seam corrupts the bytes
// here, the same place bit rot or a buggy serializer would; the
// deferred CloseAborted keeps the span from dangling if the load panics
// instead of returning an error.
func loadCachedAbstraction(tc trace.Ctx, data []byte, prog *mahjong.Program) (*mahjong.Abstraction, error) {
	sp := tc.Start(faultinject.StageCacheLoad)
	defer sp.CloseAborted()
	data = faultinject.Mutate(faultinject.StageCacheLoad, data)
	abs, err := mahjong.LoadAbstraction(bytes.NewReader(data), prog)
	sp.Close(err)
	return abs, err
}

// ---- status and control ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(s.schedq.Depths(), s.schedq.InFlight(), s.cache.len(), s.deltas.len())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeProm(w, snap)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.store.list()
	views := make([]view, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	v := j.view()
	if v.Retriable {
		// The job failed only because the server shut down before it
		// started; tell the client to resubmit elsewhere/later.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled before execution"
		j.finished = time.Now()
		s.metrics.jobsCancelled.Add(1)
		qit := j.qitem
		j.mu.Unlock()
		// Release the queue slot NOW: a cancelled job must not occupy
		// capacity (or be dequeued and discarded later) while live work
		// is being rejected. Remove returning false means a worker beat
		// us to the pop; runJob sees the terminal state and returns.
		s.schedq.Remove(qit)
		s.finishQueueWait(j, context.Canceled)
		writeJSON(w, http.StatusOK, j.view())
		return
	case StateRunning:
		j.cancel() // the worker records the terminal state
	default:
		state := j.state
		j.mu.Unlock()
		httpError(w, http.StatusConflict, "job %s already %s", j.id, state)
		return
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.view())
}

// ---- queries against completed jobs ----

// completedJob resolves {id} to a done job or writes the error (404 for
// unknown IDs, 409 for jobs not yet — or never — completing).
func (s *Server) completedJob(w http.ResponseWriter, r *http.Request) *job {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return nil
	}
	if _, _, err := j.ready(); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return nil
	}
	return j
}

func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, prog, _ := j.ready()
	spec := r.URL.Query().Get("var")
	if spec == "" {
		httpError(w, http.StatusBadRequest, "missing ?var= (format: Class.method/arity#name)")
		return
	}
	v := findVar(prog, spec)
	if v == nil {
		httpError(w, http.StatusNotFound, "no variable %q in the analyzed program", spec)
		return
	}
	type objJSON struct {
		Label  string `json:"label"`
		Type   string `json:"type"`
		Merged bool   `json:"merged"`
	}
	res := rep.Result()
	objs := res.VarObjs(v)
	out := struct {
		Var     string    `json:"var"`
		Objects []objJSON `json:"objects"`
		Types   []string  `json:"types"`
	}{Var: v.String(), Objects: []objJSON{}}
	for _, o := range objs {
		out.Objects = append(out.Objects, objJSON{Label: o.String(), Type: o.Type.Name, Merged: o.Merged})
	}
	for _, t := range res.VarTypes(v) {
		out.Types = append(out.Types, t.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCallGraph(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, _, _ := j.ready()
	switch format := r.URL.Query().Get("format"); format {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		if err := export.CallGraphDOT(w, rep.Result()); err != nil {
			httpError(w, http.StatusInternalServerError, "exporting call graph: %v", err)
		}
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := export.CallGraphJSON(w, rep.Result()); err != nil {
			httpError(w, http.StatusInternalServerError, "exporting call graph: %v", err)
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or dot)", format)
	}
}

func (s *Server) handleCasts(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, _, _ := j.ready()
	type castJSON struct {
		Method string `json:"method"`
		Stmt   string `json:"stmt"`
		Target string `json:"target"`
	}
	out := struct {
		MayFailCasts []castJSON `json:"may_fail_casts"`
	}{MayFailCasts: []castJSON{}}
	for _, c := range clients.MayFailCasts(rep.Result()) {
		out.MayFailCasts = append(out.MayFailCasts, castJSON{
			Method: c.LHS.Method.String(),
			Stmt:   c.String(),
			Target: c.Type.Name,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePolyCalls(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	rep, _, _ := j.ready()
	type siteJSON struct {
		Site    string   `json:"site"`
		Stmt    string   `json:"stmt"`
		Targets []string `json:"targets"`
	}
	res := rep.Result()
	out := struct {
		PolyCallSites []siteJSON `json:"poly_call_sites"`
	}{PolyCallSites: []siteJSON{}}
	for _, inv := range clients.PolyCallSites(res) {
		sj := siteJSON{Site: inv.Label(), Stmt: inv.String()}
		for _, m := range res.CallTargets(inv) {
			sj.Targets = append(sj.Targets, m.String())
		}
		out.PolyCallSites = append(out.PolyCallSites, sj)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAbstraction(w http.ResponseWriter, r *http.Request) {
	j := s.completedJob(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	abs := j.abs
	j.mu.Unlock()
	if abs == nil {
		httpError(w, http.StatusNotFound, "job %s did not build a Mahjong abstraction (heap=%s)",
			j.id, defaulted(j.spec.Heap, string(mahjong.HeapMahjong)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := abs.Save(w); err != nil {
		httpError(w, http.StatusInternalServerError, "persisting abstraction: %v", err)
	}
}

// handleTrace serves a job's span trees, one per pipeline attempt (a
// degraded job has two: the failed Mahjong attempt and the alloc-site
// re-run). Unlike the result endpoints it also answers for failed and
// cancelled jobs — the trace of a failed attempt is exactly what the
// caller wants to look at.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	attempts := j.traceSnapshots()
	queueTrace := j.queueTraceSnapshot()
	if len(attempts) == 0 && queueTrace == nil {
		httpError(w, http.StatusConflict, "job %s has no trace yet", j.id)
		return
	}
	// The queue span rides in its own field: attempt traces keep their
	// root-is-server.job shape, and a job shed or cancelled while queued
	// still has a trace to look at.
	out := struct {
		Job      string         `json:"job"`
		Queue    *trace.Trace   `json:"queue,omitempty"`
		Attempts []*trace.Trace `json:"attempts"`
	}{Job: j.id, Queue: queueTrace, Attempts: attempts}
	writeJSON(w, http.StatusOK, out)
}

// findVar resolves "Class.method/arity#name" against the program.
func findVar(prog *mahjong.Program, spec string) *lang.Var {
	for _, m := range prog.Methods {
		for _, v := range m.Locals {
			if v.String() == spec {
				return v
			}
		}
	}
	return nil
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best effort; client may have gone away
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// httpReject writes a backpressure rejection (429/503): a Retry-After
// header derived from retryAfter (rounded up, 1s floor) and an error
// body carrying "retriable": true, so clients can distinguish "back off
// and resubmit" from "this job is broken".
func httpReject(w http.ResponseWriter, code int, retryAfter time.Duration, format string, args ...any) {
	secs := int64(retryAfter / time.Second)
	if retryAfter%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, code, map[string]any{
		"error":     fmt.Sprintf(format, args...),
		"retriable": true,
	})
}
