package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testIR is a small program with a poly call site (w may hold B or C,
// both overriding foo) and a may-fail cast ((C) w can receive a B).
const testIR = `
class A {
  field f: A
  method foo(): void {
    return
  }
}

class B extends A {
  method foo(): void {
    return
  }
}

class C extends A {
  method foo(): void {
    return
  }
}

class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var w: A
    var c: C
    x = new A
    y = new B
    z = new C
    x.f = y
    x.f = z
    w = x.f
    w.foo()
    c = (C) w
    return
  }
}

entry Main.main/0
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

// submit posts spec and returns the accepted job's ID.
func submit(t *testing.T, ts *httptest.Server, spec JobSpec) string {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, data)
	}
	var v view
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatalf("submit: empty job id in %s", data)
	}
	return v.ID
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) view {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v view
		resp := getJSON(t, ts.URL+"/jobs/"+id, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, resp.StatusCode)
		}
		switch v.State {
		case StateDone, StateFailed, StateCancelled:
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state in time", id)
	return view{}
}

func TestSubmitPollQueryRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var health map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %v %v", resp.StatusCode, health)
	}

	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "2obj"})
	v := waitJob(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("job state %s (error %q), want done", v.State, v.Error)
	}
	if v.Result == nil || !v.Result.Scalable {
		t.Fatalf("missing/unscalable result: %+v", v.Result)
	}
	if v.Result.PolyCallSites != 1 || v.Result.MayFailCasts != 1 {
		t.Fatalf("want 1 poly call site and 1 may-fail cast, got %d/%d",
			v.Result.PolyCallSites, v.Result.MayFailCasts)
	}
	if v.Result.Objects == 0 || v.Result.MergedObjects == 0 {
		t.Fatalf("expected abstraction sizes in result: %+v", v.Result)
	}

	// Points-to query: w = x.f may hold the B and C objects.
	var pts struct {
		Var     string `json:"var"`
		Objects []struct {
			Label string `json:"label"`
			Type  string `json:"type"`
		} `json:"objects"`
		Types []string `json:"types"`
	}
	url := fmt.Sprintf("%s/jobs/%s/pointsto?var=%s", ts.URL, id, "Main.main/0%23w")
	if resp := getJSON(t, url, &pts); resp.StatusCode != 200 {
		t.Fatalf("pointsto: status %d", resp.StatusCode)
	}
	if want := []string{"B", "C"}; !equalStrings(pts.Types, want) {
		t.Fatalf("pointsto types = %v, want %v", pts.Types, want)
	}

	// Poly call sites: exactly the w.foo() dispatch, two targets.
	var poly struct {
		Sites []struct {
			Site    string   `json:"site"`
			Targets []string `json:"targets"`
		} `json:"poly_call_sites"`
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/polycalls", &poly); resp.StatusCode != 200 {
		t.Fatalf("polycalls: status %d", resp.StatusCode)
	}
	if len(poly.Sites) != 1 || len(poly.Sites[0].Targets) != 2 {
		t.Fatalf("polycalls = %+v, want one site with two targets", poly.Sites)
	}

	// May-fail casts: the (C) w cast.
	var casts struct {
		Casts []struct {
			Target string `json:"target"`
		} `json:"may_fail_casts"`
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/casts", &casts); resp.StatusCode != 200 {
		t.Fatalf("casts: status %d", resp.StatusCode)
	}
	if len(casts.Casts) != 1 || casts.Casts[0].Target != "C" {
		t.Fatalf("casts = %+v, want one cast to C", casts.Casts)
	}

	// Call graph in both formats.
	var cg struct {
		Methods []any `json:"methods"`
		Edges   []any `json:"edges"`
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/callgraph", &cg); resp.StatusCode != 200 {
		t.Fatalf("callgraph: status %d", resp.StatusCode)
	}
	if len(cg.Edges) == 0 {
		t.Fatal("callgraph json: no edges")
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/callgraph?format=dot")
	if err != nil {
		t.Fatal(err)
	}
	dot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(dot), "digraph callgraph") {
		t.Fatalf("callgraph dot output missing header: %.80s", dot)
	}

	// Persisted abstraction is served back.
	var abs struct {
		Version int `json:"version"`
		Objects int `json:"objects"`
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/abstraction", &abs); resp.StatusCode != 200 {
		t.Fatalf("abstraction: status %d", resp.StatusCode)
	}
	if abs.Version != 1 || abs.Objects == 0 {
		t.Fatalf("abstraction = %+v", abs)
	}

	// The job shows up in the listing.
	var list struct {
		Jobs []view `json:"jobs"`
	}
	if resp := getJSON(t, ts.URL+"/jobs", &list); resp.StatusCode != 200 || len(list.Jobs) != 1 {
		t.Fatalf("jobs list: %v", list)
	}
}

func TestBadRequestsAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	badSubmissions := []struct {
		name string
		body any
	}{
		{"invalid json", `{"ir": `},
		{"both ir and benchmark", JobSpec{IR: testIR, Benchmark: "pmd"}},
		{"neither ir nor benchmark", JobSpec{Analysis: "ci"}},
		{"unknown benchmark", JobSpec{Benchmark: "nope"}},
		{"syntactically bad ir", JobSpec{IR: "class {"}},
		{"unknown analysis", JobSpec{IR: testIR, Analysis: "4dim"}},
		{"unknown heap", JobSpec{IR: testIR, Heap: "free-list"}},
		{"negative timeout", JobSpec{IR: testIR, TimeoutMS: -1}},
	}
	for _, tc := range badSubmissions {
		if resp, data := postJSON(t, ts.URL+"/jobs", tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s, want 400", tc.name, resp.StatusCode, data)
		}
	}

	if resp := getJSON(t, ts.URL+"/jobs/j999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/jobs/j999/pointsto?var=x", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("query on unknown job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/jobs/j999/cancel", JobSpec{}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d, want 404", resp.StatusCode)
	}

	// Query-time validation on a completed job.
	id := submit(t, ts, JobSpec{IR: testIR})
	if v := waitJob(t, ts, id); v.State != StateDone {
		t.Fatalf("job state %s, want done", v.State)
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/pointsto", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pointsto without var: %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/pointsto?var=No.such/0%23v", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pointsto unknown var: %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/callgraph?format=xml", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("callgraph bad format: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/jobs/"+id+"/cancel", JobSpec{}); resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel done job: %d, want 409", resp.StatusCode)
	}
}

// TestAbstractionCacheHit proves the second submission of identical IR
// skips the Mahjong build: the cache-hit counter moves and the job
// reports abstraction_cache_hit.
func TestAbstractionCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	first := waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR}))
	if first.State != StateDone || first.CacheHit {
		t.Fatalf("first job: state %s cacheHit %v, want done/false", first.State, first.CacheHit)
	}
	second := waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR, Analysis: "2obj"}))
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("second job: state %s cacheHit %v, want done/true", second.State, second.CacheHit)
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.CacheMisses != 1 || snap.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
	// Both runs produced identical merged heaps.
	if first.Result.MergedObjects != second.Result.MergedObjects {
		t.Fatalf("merged objects diverged across cache: %d vs %d",
			first.Result.MergedObjects, second.Result.MergedObjects)
	}
}

// TestConcurrentSameBenchmark is the acceptance scenario: two parallel
// submissions of the same benchmark complete, exactly one builds the
// abstraction, and the other reports a cache hit in /metrics.
func TestConcurrentSameBenchmark(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := range ids {
		ids[i] = submit(t, ts, JobSpec{Benchmark: "luindex", Analysis: "ci"})
	}
	views := make([]view, 2)
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			views[i] = waitJob(t, ts, id)
		}()
	}
	wg.Wait()

	hits := 0
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("job %d: state %s (error %q), want done", i, v.State, v.Error)
		}
		if v.CacheHit {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("cache hits among parallel jobs = %d, want exactly 1", hits)
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.CacheMisses != 1 || snap.CacheHits != 1 {
		t.Fatalf("metrics cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
	if snap.JobsCompleted != 2 {
		t.Fatalf("jobs completed = %d, want 2", snap.JobsCompleted)
	}
}

// TestDeadlineCancelledJob submits with a 1ms deadline: the job must
// reach cancelled without wedging the worker pool.
func TestDeadlineCancelledJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v := waitJob(t, ts, submit(t, ts, JobSpec{Benchmark: "luindex", Analysis: "2obj", TimeoutMS: 1}))
	if v.State != StateCancelled {
		t.Fatalf("deadline job: state %s (error %q), want cancelled", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "deadline") && !strings.Contains(v.Error, "cancel") {
		t.Fatalf("deadline job error %q does not mention the deadline", v.Error)
	}

	// The single worker survives and serves the next job.
	after := waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR}))
	if after.State != StateDone {
		t.Fatalf("follow-up job: state %s, want done", after.State)
	}

	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.JobsCancelled != 1 || snap.JobsRunning != 0 {
		t.Fatalf("metrics cancelled/running = %d/%d, want 1/0", snap.JobsCancelled, snap.JobsRunning)
	}
}

// TestCancelRunningJob cancels an in-flight heavyweight analysis.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Baseline 3obj on a mid-tier benchmark: far too slow to finish
	// before the cancel lands.
	id := submit(t, ts, JobSpec{Benchmark: "checkstyle", Analysis: "3obj", Heap: "alloc-site"})
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v view
		getJSON(t, ts.URL+"/jobs/"+id, &v)
		if v.State == StateRunning {
			break
		}
		if v.State != StateQueued {
			t.Fatalf("job state %s before cancel", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, data := postJSON(t, ts.URL+"/jobs/"+id+"/cancel", JobSpec{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d, body %s", resp.StatusCode, data)
	}
	if v := waitJob(t, ts, id); v.State != StateCancelled {
		t.Fatalf("cancelled job: state %s, want cancelled", v.State)
	}
}

// TestPrometheusMetricsFormat spot-checks the text exposition.
func TestPrometheusMetricsFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	waitJob(t, ts, submit(t, ts, JobSpec{IR: testIR}))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"mahjongd_jobs_submitted_total 1",
		"mahjongd_jobs_completed_total 1",
		"mahjongd_abstraction_cache_misses_total 1",
		"# TYPE mahjongd_jobs_running gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
