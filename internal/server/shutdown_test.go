package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mahjong/internal/faultinject"
)

// pollJob fetches a job's status without asserting the HTTP code
// (waitJob fatals on non-200, but retriable shutdown failures are
// served as 503).
func pollJob(t *testing.T, ts *httptest.Server, id string) (view, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v view
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("GET /jobs/%s: decoding: %v", id, err)
	}
	return v, resp.StatusCode
}

// Shutdown under load: one job is running (its worker parked inside an
// injected slow stage), more are queued behind the single worker. Close
// must fail the queued jobs as retriable — surfaced over HTTP as 503
// with Retry-After — cancel the running job once the grace expires,
// reject new submissions, and still return promptly.
func TestShutdownUnderLoad(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, ShutdownGrace: 30 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	release := make(chan struct{})
	t.Cleanup(faultinject.Clear)
	faultinject.Set(faultinject.OnStage(faultinject.StageSolve, func(string) error {
		select {
		case <-release:
		case <-time.After(10 * time.Second): // never wedge the suite
		}
		return nil
	}))

	running := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := pollJob(t, ts, running); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued := []string{
		submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}),
		submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"}),
	}

	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()

	// The closing flag flips before the drain; new submissions bounce
	// with a retriable 503.
	for {
		resp, data := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR})
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("shutdown rejection lacks Retry-After, body %s", data)
			}
			if !strings.Contains(string(data), "shutting down") {
				t.Fatalf("shutdown rejection not descriptive: %s", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never started bouncing during Close")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// quit closes only after the grace expired and cancelRunning fired;
	// releasing the parked worker earlier would let the job finish
	// normally instead of observing its cancelled context.
	select {
	case <-srv.quit:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never reached the cancel-running phase")
	}
	close(release)

	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}

	// Queued-but-unstarted jobs: failed, retriable, 503 + Retry-After.
	for _, id := range queued {
		v, code := pollJob(t, ts, id)
		if v.State != StateFailed || !v.Retriable {
			t.Fatalf("queued job %s: state %s retriable %v, want retriable failed", id, v.State, v.Retriable)
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("queued job %s served with %d, want 503", id, code)
		}
		if !strings.Contains(v.Error, "retry") {
			t.Fatalf("queued job %s error not actionable: %q", id, v.Error)
		}
	}

	// The in-flight job was cancelled once the grace expired (the grace
	// is far shorter than the injected stall).
	v, code := pollJob(t, ts, running)
	if v.State != StateCancelled {
		t.Fatalf("running job: state %s (error %q), want cancelled", v.State, v.Error)
	}
	if code != http.StatusOK {
		t.Fatalf("cancelled job served with %d, want 200", code)
	}

	// Submissions after Close keep bouncing.
	resp, _ := postJSON(t, ts.URL+"/jobs", JobSpec{IR: testIR})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close submit: status %d, want 503", resp.StatusCode)
	}

	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics?format=json", &m)
	if m.JobsFailed < int64(len(queued)) {
		t.Fatalf("jobs_failed %d, want >= %d", m.JobsFailed, len(queued))
	}
	if m.JobsCancelled < 1 {
		t.Fatalf("jobs_cancelled %d, want >= 1", m.JobsCancelled)
	}
}

// Regression: job contexts must derive from the server's base context,
// not a detached context.Background. A job that slips into a worker
// after shutdown's per-job cancelRunning sweep would otherwise hold an
// uncancellable context and outlive Close. Cancelling the base alone —
// never touching the job's own cancel func — must reach a running job.
func TestJobContextDerivesFromServerBase(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, ShutdownGrace: 10 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	release := make(chan struct{})
	t.Cleanup(faultinject.Clear)
	faultinject.Set(faultinject.OnStage(faultinject.StageSolve, func(string) error {
		select {
		case <-release:
		case <-time.After(10 * time.Second): // never wedge the suite
		}
		return nil
	}))

	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := pollJob(t, ts, id); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Cancel only the base context, mimicking shutdown reaching a job
	// that raced past the drain. Cancellation propagates to the derived
	// job context before cancelBase returns, so once the parked stage is
	// released the solver's pre-run check observes it deterministically.
	srv.cancelBase()
	close(release)

	for {
		v, _ := pollJob(t, ts, id)
		if v.State == StateCancelled {
			break
		}
		if v.State == StateDone || v.State == StateFailed {
			t.Fatalf("job finished %s (error %q); base-context cancellation never reached it", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never observed the cancelled base context")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close on an idle server lets nothing linger: it returns promptly and
// is idempotent.
func TestShutdownIdleIsPrompt(t *testing.T) {
	srv := New(Config{Workers: 2, ShutdownGrace: 5 * time.Second})
	start := time.Now()
	srv.Close()
	srv.Close() // idempotent
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("idle Close took %v; the grace period must not be waited out with no work in flight", d)
	}
}
