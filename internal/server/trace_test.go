package server

// Tests for the daemon's observability surface: GET /jobs/{id}/trace,
// per-stage duration histograms in /metrics, the slow-job log, and the
// guarantee that pprof lives only on the opt-in debug handler.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mahjong/internal/faultinject"
	"mahjong/internal/trace"
)

// traceBody is the JSON shape of GET /jobs/{id}/trace.
type traceBody struct {
	Job      string         `json:"job"`
	Attempts []*trace.Trace `json:"attempts"`
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "2obj"})
	if v := waitJob(t, ts, id); v.State != StateDone {
		t.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
	}

	var body traceBody
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/trace", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", resp.StatusCode)
	}
	if body.Job != id || len(body.Attempts) != 1 {
		t.Fatalf("want 1 attempt for job %s, got %+v", id, body)
	}
	snap := body.Attempts[0]
	if err := snap.WellFormed(); err != nil {
		t.Fatalf("served trace malformed: %v", err)
	}
	if len(snap.Spans) == 0 || snap.Spans[0].Stage != faultinject.StageJob || snap.Spans[0].Parent != -1 {
		t.Fatalf("root span must be %s: %+v", faultinject.StageJob, snap.Spans)
	}
	for _, stage := range []string{faultinject.StageSolve, faultinject.StageFPG, faultinject.StageModel, faultinject.StageClients} {
		found := false
		for _, s := range snap.Spans {
			if s.Stage == stage {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trace has no %s span: %+v", stage, snap.Spans)
		}
	}

	// Unknown job and no-trace-yet cases.
	if resp := getJSON(t, ts.URL+"/jobs/zzz/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

// TestTraceEndpointDegraded: a degraded job must expose TWO attempts —
// the failed Mahjong pipeline and the alloc-site re-run — with the
// first attempt's failure preserved, not overwritten by the second.
func TestTraceEndpointDegraded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	t.Cleanup(faultinject.Clear)
	faultinject.Set(faultinject.OnStage(faultinject.StageModel, faultinject.Once(faultinject.PanicWith("injected modeler bug"))))

	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	v := waitJob(t, ts, id)
	faultinject.Clear()
	if v.State != StateDone || !v.Degraded {
		t.Fatalf("job %s: state %s degraded %v (%s)", id, v.State, v.Degraded, v.Error)
	}

	var body traceBody
	if resp := getJSON(t, ts.URL+"/jobs/"+id+"/trace", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", resp.StatusCode)
	}
	if len(body.Attempts) != 2 {
		t.Fatalf("degraded job must serve 2 attempts, got %d", len(body.Attempts))
	}
	first, second := body.Attempts[0], body.Attempts[1]
	if err := first.WellFormed(); err != nil {
		t.Fatalf("failed attempt's trace malformed: %v", err)
	}
	if err := second.WellFormed(); err != nil {
		t.Fatalf("re-run attempt's trace malformed: %v", err)
	}
	if first.Spans[0].Stage != faultinject.StageJob || first.Spans[0].Fail != trace.FailPanic {
		t.Fatalf("first attempt's root must record the panic: %+v", first.Spans[0])
	}
	foundFailedModel := false
	for _, s := range first.Spans {
		if s.Stage == faultinject.StageModel && s.Fail == trace.FailPanic {
			foundFailedModel = true
		}
	}
	if !foundFailedModel {
		t.Fatalf("first attempt lost the failed %s span: %+v", faultinject.StageModel, first.Spans)
	}
	if second.Spans[0].Fail != "" {
		t.Fatalf("re-run attempt's root must be clean: %+v", second.Spans[0])
	}
	for _, s := range second.Spans {
		if s.Stage == faultinject.StageModel || s.Stage == faultinject.StageFPG {
			t.Fatalf("alloc-site re-run must not build an abstraction: %+v", s)
		}
	}
}

// TestStageDurationHistograms: after one completed job, /metrics must
// expose the histogram block with observations for the stages the job
// actually ran, and zero-valued series for every registered stage.
func TestStageDurationHistograms(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	if v := waitJob(t, ts, id); v.State != StateDone {
		t.Fatalf("job: %s", v.State)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	if !strings.Contains(text, "# TYPE mahjongd_stage_duration_seconds histogram") {
		t.Fatalf("no histogram type line in /metrics:\n%s", text)
	}
	for _, stage := range knownStages {
		if !strings.Contains(text, `mahjongd_stage_duration_seconds_count{stage="`+stage+`"}`) {
			t.Fatalf("stage %s has no duration series:\n%s", stage, text)
		}
	}
	// The job ran: its stage and the solve stage must have observations.
	for _, want := range []string{
		`mahjongd_stage_duration_seconds_count{stage="server.job"} 1`,
		`mahjongd_stage_duration_seconds_count{stage="pta.solve"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, text)
		}
	}

	// The JSON form carries the same data.
	var snap MetricsSnapshot
	if resp := getJSON(t, ts.URL+"/metrics?format=json", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics json: %d", resp.StatusCode)
	}
	if snap.StageDurations[faultinject.StageJob].Count != 1 {
		t.Fatalf("json stage_durations for server.job = %+v", snap.StageDurations[faultinject.StageJob])
	}
}

// syncBuffer is a minimal concurrency-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowJobLog(t *testing.T) {
	var log syncBuffer
	_, ts := newTestServer(t, Config{Workers: 1, SlowJob: time.Nanosecond, SlowJobLog: &log})
	id := submit(t, ts, JobSpec{IR: testIR, Analysis: "ci"})
	if v := waitJob(t, ts, id); v.State != StateDone {
		t.Fatalf("job: %s", v.State)
	}
	out := log.String()
	if !strings.Contains(out, "slow job "+id) {
		t.Fatalf("slow-job log missing header:\n%s", out)
	}
	for _, stage := range []string{faultinject.StageJob, faultinject.StageSolve, faultinject.StageModel} {
		if !strings.Contains(out, stage) {
			t.Fatalf("slow-job span tree missing %s:\n%s", stage, out)
		}
	}
}

// TestPprofOnlyOnDebugHandler: the serving mux must never expose
// /debug/pprof/, while the explicit DebugHandler must.
func TestPprofOnlyOnDebugHandler(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving mux answered /debug/pprof/ with %d, want 404", resp.StatusCode)
	}

	dbg := httptest.NewServer(DebugHandler())
	defer dbg.Close()
	resp, err = http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "goroutine") {
		t.Fatalf("debug handler /debug/pprof/: status %d body %q", resp.StatusCode, data)
	}
}
