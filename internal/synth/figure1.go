package synth

import "mahjong/internal/lang"

// Figure1 is the paper's motivating example as a ready-made program,
// with the interesting statements exposed for examples and tests.
type Figure1 struct {
	Prog    *lang.Program
	A, B, C *lang.Class
	// Sites holds o1..o6 in the paper's order: three A allocations, one
	// B stored in x.f, two Cs stored in y.f and z.f.
	Sites []*lang.AllocSite
	// Call is the virtual call `a.foo()` (line 8); Cast is `c = (C) a`
	// (line 9); VarA is the variable `a`.
	Call *lang.Invoke
	Cast *lang.Cast
	VarA *lang.Var
}

// NewFigure1 builds the Figure 1 program.
func NewFigure1() *Figure1 {
	p := lang.NewProgram()
	a := p.NewClass("A", nil)
	f := a.NewField("f", a)
	a.NewMethod("foo", false, nil, nil).AddReturn(nil)
	b := p.NewClass("B", a)
	b.NewMethod("foo", false, nil, nil).AddReturn(nil)
	c := p.NewClass("C", a)
	c.NewMethod("foo", false, nil, nil).AddReturn(nil)

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	x := m.NewVar("x", a)
	y := m.NewVar("y", a)
	z := m.NewVar("z", a)
	va := m.NewVar("a", a)
	vc := m.NewVar("c", c)
	t4 := m.NewVar("t4", a)
	t5 := m.NewVar("t5", a)
	t6 := m.NewVar("t6", a)

	fig := &Figure1{Prog: p, A: a, B: b, C: c, VarA: va}
	fig.Sites = append(fig.Sites,
		m.AddAlloc(x, a), m.AddAlloc(y, a), m.AddAlloc(z, a))
	fig.Sites = append(fig.Sites, m.AddAlloc(t4, b))
	m.AddStore(x, f, t4)
	fig.Sites = append(fig.Sites, m.AddAlloc(t5, c))
	m.AddStore(y, f, t5)
	fig.Sites = append(fig.Sites, m.AddAlloc(t6, c))
	m.AddStore(z, f, t6)
	m.AddLoad(va, z, f)
	fig.Call = m.AddVirtualCall(nil, va, "foo")
	m.AddCast(vc, c, va)
	for _, st := range m.Stmts {
		if cs, ok := st.(*lang.Cast); ok {
			fig.Cast = cs
		}
	}
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		panic("synth: Figure1 invalid: " + err.Error())
	}
	return fig
}
