package synth

import (
	"fmt"
	"math/rand"

	"mahjong/internal/lang"
)

// Generate builds the benchmark program for a profile. Generation is
// fully deterministic in the profile (including its seed).
func Generate(p Profile) (*lang.Program, error) {
	g := &generator{
		rt:  NewRuntime(),
		rng: rand.New(rand.NewSource(p.Seed)),
		p:   p,
	}
	g.prog = g.rt.Prog
	g.build()
	if err := g.prog.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated %s invalid: %w", p.Name, err)
	}
	return g.prog, nil
}

// MustGenerate is Generate for tests and benchmarks.
func MustGenerate(p Profile) *lang.Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

type module struct {
	index int
	base  *lang.Class   // abstract visitor base
	types []*lang.Class // leaf types (extend base)
	entry *lang.Method  // static Module.run()
}

type generator struct {
	rt   *Runtime
	prog *lang.Program
	rng  *rand.Rand
	p    Profile

	modules []*module
}

func (g *generator) build() {
	for i := 0; i < g.p.Modules; i++ {
		g.modules = append(g.modules, g.buildModuleTypes(i))
	}
	for _, m := range g.modules {
		g.buildModuleBody(m)
	}
	g.buildMain()
}

// buildModuleTypes creates the module's class hierarchy: an abstract
// base with a virtual visit() and leaf types overriding it. Some leaves
// carry a field of another leaf type of the same module (set during
// construction), some a field that remains null.
func (g *generator) buildModuleTypes(idx int) *module {
	m := &module{index: idx}
	name := func(s string) string { return fmt.Sprintf("app.m%d.%s", idx, s) }
	m.base = g.prog.NewClass(name("Base"), nil)
	m.base.NewAbstractMethod("visit", nil, g.rt.String)
	for i := 0; i < g.p.TypesPerModule; i++ {
		leaf := g.prog.NewClass(name(fmt.Sprintf("T%d", i)), m.base)
		m.types = append(m.types, leaf)
	}
	// Fields: roughly half of the leaves get a link to another leaf,
	// some get a String label, some a field left null.
	for i, leaf := range m.types {
		if i%2 == 0 && len(m.types) > 1 {
			leaf.NewField("link", m.types[(i+1)%len(m.types)])
		}
		if i%3 == 0 {
			leaf.NewField("label", g.rt.String)
		}
	}
	// visit() bodies: return a fresh String; leaves with a link also
	// call visit() on it (recursive dispatch, keeps call graph busy).
	for i, leaf := range m.types {
		v := leaf.NewMethod("visit", false, nil, g.rt.String)
		s := v.NewVar("s", g.rt.String)
		v.AddStaticCall(s, g.rt.MkString)
		if link := leaf.Field("link"); link != nil && link.Owner == leaf {
			lk := v.NewVar("lk", link.Type)
			s2 := v.NewVar("s2", g.rt.String)
			v.AddLoad(lk, v.This, link)
			v.AddVirtualCall(s2, lk, "visit")
			v.AddReturn(s2)
		}
		if i%3 == 0 {
			lbl := v.NewVar("lbl", g.rt.String)
			v.AddLoad(lbl, v.This, leaf.Field("label"))
			v.AddReturn(lbl)
		}
		v.AddReturn(s)
	}
	return m
}

// buildModuleBody emits the module's behavior: builders, typed
// containers, maps, wrapper chains, static caches, null-field objects,
// and the module entry that invokes all of it.
func (g *generator) buildModuleBody(m *module) {
	util := g.prog.NewClass(fmt.Sprintf("app.m%d.Util", m.index), nil)
	entry := util.NewMethod("run", true, nil, nil)
	m.entry = entry

	var helpers []*lang.Method
	for i := 0; i < g.p.BuildersPerModule; i++ {
		helpers = append(helpers, g.buildBuilderHelper(util, i))
	}
	for i := 0; i < g.p.ListsPerModule; i++ {
		helpers = append(helpers, g.buildListGroup(m, util, i))
	}
	for i := 0; i < g.p.MapsPerModule; i++ {
		helpers = append(helpers, g.buildMapGroup(m, util, i))
	}
	for i := 0; i < g.p.ChainsPerModule; i++ {
		helpers = append(helpers, g.buildChainGroup(m, util, i))
	}
	for i := 0; i < g.p.Statics; i++ {
		helpers = append(helpers, g.buildStaticCache(m, util, i))
	}
	helpers = append(helpers, g.buildNullLeaves(m, util))
	helpers = append(helpers, g.buildPolySite(m, util))
	if g.p.RendersPerModule > 0 {
		helpers = append(helpers, g.buildRenderPattern(m, util))
	}

	for _, h := range helpers {
		entry.AddStaticCall(nil, h)
	}
	entry.AddReturn(nil)
}

// allocString emits an inline `new String` with its backing char[]
// (three statements, two allocation sites), as javac does for string
// expressions. Inline sites are what Mahjong merges: they are all
// mutually type-consistent (Table 1 rows 1–2 shapes).
func (g *generator) allocString(h *lang.Method, name string) *lang.Var {
	s := h.NewVar(name, g.rt.String)
	cs := h.NewVar(name+"$cs", g.rt.CharArray)
	h.AddAlloc(s, g.rt.String)
	h.AddAlloc(cs, g.rt.CharArray)
	h.AddStore(s, g.rt.StringValue, cs)
	return s
}

// allocBuilder emits an inline `new StringBuilder` with its buffer.
func (g *generator) allocBuilder(h *lang.Method, name string) *lang.Var {
	b := h.NewVar(name, g.rt.Builder)
	cs := h.NewVar(name+"$cs", g.rt.CharArray)
	h.AddAlloc(b, g.rt.Builder)
	h.AddAlloc(cs, g.rt.CharArray)
	h.AddStore(b, g.rt.BuilderValue, cs)
	return b
}

// buildBuilderHelper emits the ubiquitous string-building pattern:
//
//	b = new StringBuilder; s = new String;
//	b = b.append(s); r = b.toString()
//
// Every helper contributes its own type-consistent StringBuilder/
// String/char[] allocation sites, reproducing the heap
// over-partitioning that Mahjong collapses (Table 1 row 1: 1303
// StringBuilder objects in one equivalence class).
func (g *generator) buildBuilderHelper(util *lang.Class, i int) *lang.Method {
	h := util.NewMethod(fmt.Sprintf("buildText%d", i), true, nil, g.rt.String)
	b := g.allocBuilder(h, "b")
	s := g.allocString(h, "s")
	r := h.NewVar("r", g.rt.String)
	nApp := 1 + g.rng.Intn(3)
	for k := 0; k < nApp; k++ {
		h.AddVirtualCall(b, b, "append", s)
	}
	h.AddVirtualCall(r, b, "toString")
	return h
}

// buildListGroup emits a typed container group: an ArrayList filled
// with one leaf type, read back through get() and the iterator, then
// cast and dispatched. Different groups use different leaf types, so
// their ArrayList/Object[] objects are NOT type-consistent with each
// other: Mahjong keeps them apart where alloc-type merges them.
func (g *generator) buildListGroup(m *module, util *lang.Class, i int) *lang.Method {
	leaf := m.types[i%len(m.types)]
	h := util.NewMethod(fmt.Sprintf("listGroup%d", i), true, nil, nil)
	lst := h.NewVar("lst", g.rt.ArrayList)
	h.AddAlloc(lst, g.rt.ArrayList)
	h.AddVirtualCall(nil, lst, "init")
	nItems := 2 + g.rng.Intn(3)
	for k := 0; k < nItems; k++ {
		it := h.NewVar(fmt.Sprintf("it%d", k), leaf)
		h.AddAlloc(it, leaf)
		if lbl := leaf.Field("label"); lbl != nil {
			sv := g.allocString(h, fmt.Sprintf("sv%d", k))
			h.AddStore(it, lbl, sv)
		}
		h.AddVirtualCall(nil, lst, "add", it)
	}
	raw := h.NewVar("raw", g.prog.Object())
	typed := h.NewVar("typed", leaf)
	out := h.NewVar("out", g.rt.String)
	h.AddVirtualCall(raw, lst, "get")
	h.AddCast(typed, leaf, raw) // may-fail under coarse abstractions
	h.AddVirtualCall(out, typed, "visit")

	// Iterator path.
	iter := h.NewVar("iter", g.rt.Iterator)
	raw2 := h.NewVar("raw2", g.prog.Object())
	typed2 := h.NewVar("typed2", m.base)
	h.AddVirtualCall(iter, lst, "iterator")
	h.AddVirtualCall(raw2, iter, "next")
	h.AddCast(typed2, m.base, raw2)
	h.AddVirtualCall(nil, typed2, "visit")
	h.AddReturn(nil)
	return h
}

// buildMapGroup emits a HashMap keyed by String holding one leaf type.
func (g *generator) buildMapGroup(m *module, util *lang.Class, i int) *lang.Method {
	leaf := m.types[(i*2+1)%len(m.types)]
	h := util.NewMethod(fmt.Sprintf("mapGroup%d", i), true, nil, nil)
	mp := h.NewVar("mp", g.rt.HashMap)
	h.AddAlloc(mp, g.rt.HashMap)
	h.AddVirtualCall(nil, mp, "init")
	n := 1 + g.rng.Intn(2)
	for k := 0; k < n; k++ {
		key := h.NewVar(fmt.Sprintf("key%d", k), g.rt.String)
		val := h.NewVar(fmt.Sprintf("val%d", k), leaf)
		h.AddStaticCall(key, g.rt.MkString)
		h.AddAlloc(val, leaf)
		h.AddVirtualCall(nil, mp, "put", key, val)
	}
	probe := h.NewVar("probe", g.rt.String)
	raw := h.NewVar("raw", g.prog.Object())
	typed := h.NewVar("typed", leaf)
	h.AddStaticCall(probe, g.rt.MkString)
	h.AddVirtualCall(raw, mp, "get", probe)
	h.AddCast(typed, leaf, raw)
	h.AddVirtualCall(nil, typed, "visit")
	h.AddReturn(nil)
	return h
}

// buildChainGroup emits a wrapper chain wrap0(wrap1(…(v))) through
// Object-typed parameters, called with two different leaf types, each
// result cast back and dispatched. Deeper chains need deeper contexts.
func (g *generator) buildChainGroup(m *module, util *lang.Class, i int) *lang.Method {
	obj := g.prog.Object()
	depth := g.p.ChainDepth
	chain := make([]*lang.Method, depth)
	for d := depth - 1; d >= 0; d-- {
		w := util.NewMethod(fmt.Sprintf("chain%dw%d", i, d), true, []*lang.Class{obj}, obj)
		if d == depth-1 {
			w.AddReturn(w.Params[0])
		} else {
			r := w.NewVar("r", obj)
			w.AddStaticCall(r, chain[d+1], w.Params[0])
			w.AddReturn(r)
		}
		chain[d] = w
	}
	h := util.NewMethod(fmt.Sprintf("chainGroup%d", i), true, nil, nil)
	tA := m.types[(2*i)%len(m.types)]
	tB := m.types[(2*i+1)%len(m.types)]
	for j, leaf := range []*lang.Class{tA, tB} {
		v := h.NewVar(fmt.Sprintf("v%d", j), leaf)
		r := h.NewVar(fmt.Sprintf("r%d", j), obj)
		c := h.NewVar(fmt.Sprintf("c%d", j), leaf)
		h.AddAlloc(v, leaf)
		h.AddStaticCall(r, chain[0], v)
		h.AddCast(c, leaf, r)
		h.AddVirtualCall(nil, c, "visit")
	}
	h.AddReturn(nil)
	return h
}

// buildStaticCache stores a container in a static field and reads it
// back elsewhere, creating whole-program flow that stresses ci.
func (g *generator) buildStaticCache(m *module, util *lang.Class, i int) *lang.Method {
	leaf := m.types[(i*3)%len(m.types)]
	cache := util.NewStaticField(fmt.Sprintf("CACHE%d", i), g.rt.ArrayList)
	h := util.NewMethod(fmt.Sprintf("staticGroup%d", i), true, nil, nil)
	lst := h.NewVar("lst", g.rt.ArrayList)
	it := h.NewVar("it", leaf)
	h.AddAlloc(lst, g.rt.ArrayList)
	h.AddVirtualCall(nil, lst, "init")
	h.AddAlloc(it, leaf)
	h.AddVirtualCall(nil, lst, "add", it)
	h.AddStaticStore(cache, lst)
	lst2 := h.NewVar("lst2", g.rt.ArrayList)
	raw := h.NewVar("raw", g.prog.Object())
	typed := h.NewVar("typed", leaf)
	h.AddStaticLoad(lst2, cache)
	h.AddVirtualCall(raw, lst2, "get")
	h.AddCast(typed, leaf, raw)
	h.AddVirtualCall(nil, typed, "visit")
	h.AddReturn(nil)
	return h
}

// buildNullLeaves allocates leaf objects whose link/label fields are
// never written (the Table 1 "null" distinction and Example 3.1).
func (g *generator) buildNullLeaves(m *module, util *lang.Class) *lang.Method {
	h := util.NewMethod("nullLeaves", true, nil, nil)
	for i := 0; i < g.p.NullFieldsPerModule; i++ {
		leaf := m.types[i%len(m.types)]
		v := h.NewVar(fmt.Sprintf("v%d", i), leaf)
		h.AddAlloc(v, leaf)
		h.AddVirtualCall(nil, v, "visit")
	}
	h.AddReturn(nil)
	return h
}

// buildPolySite emits one genuinely polymorphic call: an Object[] mixing
// two leaf types dispatched through the module base.
func (g *generator) buildPolySite(m *module, util *lang.Class) *lang.Method {
	h := util.NewMethod("polySite", true, nil, nil)
	arr := h.NewVar("arr", g.rt.ObjArray)
	elem := g.rt.ObjArray.Field(lang.ElemField)
	h.AddAlloc(arr, g.rt.ObjArray)
	for j := 0; j < 2 && j < len(m.types); j++ {
		v := h.NewVar(fmt.Sprintf("v%d", j), m.types[j])
		h.AddAlloc(v, m.types[j])
		h.AddStore(arr, elem, v)
	}
	raw := h.NewVar("raw", g.prog.Object())
	typed := h.NewVar("typed", m.base)
	h.AddLoad(raw, arr, elem)
	h.AddCast(typed, m.base, raw)
	h.AddVirtualCall(nil, typed, "visit") // irreducibly poly
	h.AddReturn(nil)
	return h
}

// buildRenderPattern emits the document-rendering workload that drives
// deep object-sensitive contexts. The receiver chain is
//
//	driver → Document.render() → Section.layout() → Paragraph.format()
//
// with Sections allocated inside render (their heap context carries the
// document) and Paragraphs allocated inside layout (their heap context
// carries the document only when k-1 ≥ 2). The heavy statement load
// sits in format(), so its cost multiplies by the number of Document
// allocation sites exactly when k ≥ 3:
//
//	2obj: format runs under [section, paragraph] contexts — independent
//	      of the documents;
//	3obj: format runs under [document, section, paragraph] contexts —
//	      once per document site.
//
// All documents/sections/paragraphs are type-consistent (they hold the
// same String structure), so Mahjong merges them and M-3obj analyzes
// the chain under a single context — unless DiverseDocs is set, in
// which case every document site stores a per-site content class that
// is threaded down the chain, type-consistency fails at every level,
// and even M-3obj pays the full cost (the paper's eclipse/findbugs/JPC
// story).
func (g *generator) buildRenderPattern(m *module, util *lang.Class) *lang.Method {
	name := func(s string) string { return fmt.Sprintf("app.m%d.%s", m.index, s) }
	obj := g.prog.Object()
	doc := g.prog.NewClass(name("Document"), nil)
	title := doc.NewField("title", g.rt.String)
	sec := g.prog.NewClass(name("Section"), nil)
	stitle := sec.NewField("title", g.rt.String)
	para := g.prog.NewClass(name("Paragraph"), nil)
	ptext := para.NewField("text", g.rt.String)
	pcache := para.NewField("cache", g.rt.String)
	var dContent, sContent, pContent *lang.Field
	if g.p.DiverseDocs {
		dContent = doc.NewField("content", obj)
		sContent = sec.NewField("content", obj)
		pContent = para.NewField("content", obj)
	}

	// A static leaf helper called from format(): static callees inherit
	// the caller's object-sensitive context, so each context-sensitive
	// copy of format() drags a copy of the helper along.
	leafHelp := util.NewMethod("renderLeaf", true, []*lang.Class{g.rt.String}, g.rt.String)
	{
		a := g.allocString(leafHelp, "a")
		r := leafHelp.NewVar("r", g.rt.String)
		leafHelp.AddVirtualCall(r, leafHelp.Params[0], "concat", a)
		leafHelp.AddReturn(r)
	}

	// Paragraph.format(): the heavy leaf of the chain.
	format := para.NewMethod("format", false, nil, g.rt.String)
	{
		tx := format.NewVar("tx", g.rt.String)
		format.AddLoad(tx, format.This, ptext)
		prev := tx
		for i := 0; i < 5; i++ {
			s := g.allocString(format, fmt.Sprintf("s%d", i))
			cat := format.NewVar(fmt.Sprintf("cat%d", i), g.rt.String)
			format.AddVirtualCall(cat, prev, "concat", s)
			lf := format.NewVar(fmt.Sprintf("lf%d", i), g.rt.String)
			format.AddStaticCall(lf, leafHelp, cat)
			format.AddStore(format.This, pcache, lf)
			prev = lf
		}
		back := format.NewVar("back", g.rt.String)
		format.AddLoad(back, format.This, pcache)
		format.AddReturn(back)
	}

	// Section.layout(): allocates paragraphs (their heap context is the
	// section's context truncated to k-1) and formats them. Kept light:
	// at k = 2 this level is the deepest one multiplied by documents.
	layout := sec.NewMethod("layout", false, nil, g.rt.String)
	{
		out := layout.NewVar("out", g.rt.String)
		t := layout.NewVar("t", g.rt.String)
		layout.AddLoad(t, layout.This, stitle)
		for i := 0; i < g.p.ParasPerDoc; i++ {
			pv := layout.NewVar(fmt.Sprintf("p%d", i), para)
			layout.AddAlloc(pv, para)
			layout.AddStore(pv, ptext, t)
			if g.p.DiverseDocs {
				cv := layout.NewVar(fmt.Sprintf("cv%d", i), obj)
				layout.AddLoad(cv, layout.This, sContent)
				layout.AddStore(pv, pContent, cv)
			}
			layout.AddVirtualCall(out, pv, "format")
		}
		layout.AddReturn(out)
	}

	// Document.render(): allocates sections and lays them out. Light.
	render := doc.NewMethod("render", false, nil, g.rt.String)
	{
		out := render.NewVar("out", g.rt.String)
		t := render.NewVar("t", g.rt.String)
		render.AddLoad(t, render.This, title)
		for i := 0; i < 2; i++ {
			sv := render.NewVar(fmt.Sprintf("sec%d", i), sec)
			render.AddAlloc(sv, sec)
			render.AddStore(sv, stitle, t)
			if g.p.DiverseDocs {
				cv := render.NewVar(fmt.Sprintf("cv%d", i), obj)
				render.AddLoad(cv, render.This, dContent)
				render.AddStore(sv, sContent, cv)
			}
			render.AddVirtualCall(out, sv, "layout")
		}
		render.AddReturn(out)
	}

	// The driver: RendersPerModule straight-line Document sites.
	h := util.NewMethod("renderAll", true, nil, nil)
	for i := 0; i < g.p.RendersPerModule; i++ {
		d := h.NewVar(fmt.Sprintf("d%d", i), doc)
		s := g.allocString(h, fmt.Sprintf("s%d", i))
		r := h.NewVar(fmt.Sprintf("r%d", i), g.rt.String)
		h.AddAlloc(d, doc)
		h.AddStore(d, title, s)
		if g.p.DiverseDocs {
			cc := g.prog.NewClass(name(fmt.Sprintf("Content%d", i)), nil)
			cv := h.NewVar(fmt.Sprintf("c%d", i), cc)
			h.AddAlloc(cv, cc)
			h.AddStore(d, dContent, cv)
		}
		h.AddVirtualCall(r, d, "render")
	}
	h.AddReturn(nil)
	return h
}

func (g *generator) buildMain() {
	mainCls := g.prog.NewClass("app.Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)
	for _, mod := range g.modules {
		m.AddStaticCall(nil, mod.entry)
	}
	m.AddReturn(nil)
	g.prog.SetEntry(m)
}
