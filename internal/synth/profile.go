package synth

import (
	"fmt"
	"sort"
)

// Profile parameterizes one generated benchmark program. Field values
// control the number of allocation sites of each heap shape, so they
// directly set the size axes reported in §6.1.1 (#objects, #types,
// #fields) and the difficulty axes of Table 2.
type Profile struct {
	Name string
	Seed int64

	// Modules is the number of application modules ("packages").
	Modules int
	// TypesPerModule is the number of leaf data types per module; each
	// participates in a dispatch hierarchy below its module base class.
	TypesPerModule int
	// BuildersPerModule is the number of string-building helpers per
	// module; each contributes several mutually type-consistent
	// String/StringBuilder/char[] allocation sites.
	BuildersPerModule int
	// ListsPerModule is the number of typed container groups; each group
	// allocates an ArrayList, fills it with one leaf type, and reads it
	// back through a cast plus a virtual call.
	ListsPerModule int
	// MapsPerModule is the number of HashMap usage groups.
	MapsPerModule int
	// ChainDepth is the length of wrapper call chains (what context
	// sensitivity must see through).
	ChainDepth int
	// ChainsPerModule is the number of such chains.
	ChainsPerModule int
	// Statics is the number of static-field caches per module.
	Statics int
	// NullFieldsPerModule adds leaf objects whose fields stay null.
	NullFieldsPerModule int

	// RendersPerModule is the number of Document allocation sites in the
	// render pattern: Document.render() → Paragraph.format() →
	// StringBuilder work, a three-level receiver chain. Under k-object
	// sensitivity the analysis cost multiplies by the number of Document
	// sites once k ≥ 3, which is what makes baseline 3obj blow up while
	// M-3obj, having merged the type-consistent documents, does not.
	RendersPerModule int
	// ParasPerDoc is the number of Paragraph sites per Document.render.
	ParasPerDoc int
	// DiverseDocs gives every Document site a content field holding a
	// per-site class, making documents pairwise type-INconsistent:
	// Mahjong cannot merge them, so even M-3obj stays expensive. Used
	// for the three programs the paper reports unscalable under M-3obj.
	DiverseDocs bool
}

// Profiles returns the 12 benchmark profiles, named after the paper's
// subjects, ordered as in Table 2. Sizes scale roughly with the real
// programs' relative sizes (eclipse largest, luindex smallest) while
// staying laptop-friendly.
func Profiles() []Profile {
	base := []Profile{
		// Mid tier: baseline 3obj exceeds the budget, M-3obj does not.
		{Name: "checkstyle", Seed: 101, Modules: 8, TypesPerModule: 9, BuildersPerModule: 60, ListsPerModule: 8, MapsPerModule: 3, ChainDepth: 4, ChainsPerModule: 3, Statics: 2, NullFieldsPerModule: 2, RendersPerModule: 70, ParasPerDoc: 3},
		{Name: "bloat", Seed: 105, Modules: 7, TypesPerModule: 8, BuildersPerModule: 45, ListsPerModule: 7, MapsPerModule: 3, ChainDepth: 5, ChainsPerModule: 3, Statics: 2, NullFieldsPerModule: 1, RendersPerModule: 90, ParasPerDoc: 3},
		{Name: "chart", Seed: 106, Modules: 8, TypesPerModule: 9, BuildersPerModule: 55, ListsPerModule: 8, MapsPerModule: 3, ChainDepth: 4, ChainsPerModule: 3, Statics: 2, NullFieldsPerModule: 2, RendersPerModule: 65, ParasPerDoc: 3},
		{Name: "pmd", Seed: 111, Modules: 8, TypesPerModule: 8, BuildersPerModule: 50, ListsPerModule: 8, MapsPerModule: 3, ChainDepth: 5, ChainsPerModule: 3, Statics: 2, NullFieldsPerModule: 2, RendersPerModule: 75, ParasPerDoc: 3},
		{Name: "xalan", Seed: 112, Modules: 8, TypesPerModule: 8, BuildersPerModule: 45, ListsPerModule: 7, MapsPerModule: 3, ChainDepth: 4, ChainsPerModule: 3, Statics: 2, NullFieldsPerModule: 1, RendersPerModule: 85, ParasPerDoc: 3},
		// Big three: DiverseDocs defeats merging of documents, so even
		// M-3obj exceeds the budget (paper: eclipse, findbugs, JPC remain
		// unscalable under M-3obj).
		{Name: "eclipse", Seed: 107, Modules: 12, TypesPerModule: 10, BuildersPerModule: 65, ListsPerModule: 9, MapsPerModule: 4, ChainDepth: 5, ChainsPerModule: 4, Statics: 3, NullFieldsPerModule: 2, RendersPerModule: 70, ParasPerDoc: 3, DiverseDocs: true},
		{Name: "findbugs", Seed: 102, Modules: 9, TypesPerModule: 8, BuildersPerModule: 55, ListsPerModule: 8, MapsPerModule: 4, ChainDepth: 4, ChainsPerModule: 3, Statics: 3, NullFieldsPerModule: 2, RendersPerModule: 100, ParasPerDoc: 4, DiverseDocs: true},
		{Name: "JPC", Seed: 103, Modules: 9, TypesPerModule: 7, BuildersPerModule: 50, ListsPerModule: 7, MapsPerModule: 3, ChainDepth: 5, ChainsPerModule: 3, Statics: 2, NullFieldsPerModule: 1, RendersPerModule: 100, ParasPerDoc: 4, DiverseDocs: true},
		// Small tier: every analysis, including baseline 3obj, finishes.
		{Name: "antlr", Seed: 104, Modules: 6, TypesPerModule: 7, BuildersPerModule: 40, ListsPerModule: 6, MapsPerModule: 2, ChainDepth: 4, ChainsPerModule: 2, Statics: 2, NullFieldsPerModule: 2, RendersPerModule: 12, ParasPerDoc: 2},
		{Name: "fop", Seed: 108, Modules: 7, TypesPerModule: 7, BuildersPerModule: 35, ListsPerModule: 6, MapsPerModule: 2, ChainDepth: 4, ChainsPerModule: 2, Statics: 2, NullFieldsPerModule: 1, RendersPerModule: 12, ParasPerDoc: 2},
		{Name: "luindex", Seed: 109, Modules: 4, TypesPerModule: 6, BuildersPerModule: 30, ListsPerModule: 5, MapsPerModule: 2, ChainDepth: 3, ChainsPerModule: 2, Statics: 1, NullFieldsPerModule: 1, RendersPerModule: 10, ParasPerDoc: 2},
		{Name: "lusearch", Seed: 110, Modules: 5, TypesPerModule: 6, BuildersPerModule: 30, ListsPerModule: 5, MapsPerModule: 2, ChainDepth: 3, ChainsPerModule: 2, Statics: 1, NullFieldsPerModule: 1, RendersPerModule: 10, ParasPerDoc: 2},
	}
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })
	return base
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("synth: unknown benchmark %q", name)
}

// ProfileNames lists the benchmark names in table order.
func ProfileNames() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
