package synth

import (
	"fmt"
	"math/rand"

	"mahjong/internal/lang"
)

// RandomProgram generates a small random but well-typed program for
// property-based testing: a handful of classes in a random hierarchy
// with fields and virtual methods, plus a main that allocates, stores,
// loads, casts, and calls through randomly chosen variables. All
// programs validate; determinism follows from the seed.
//
// The generator's purpose is adversarial coverage of the analysis
// pipeline (soundness and abstraction-ordering properties), not
// realism — use Generate/Profiles for realistic workloads.
func RandomProgram(seed int64) *lang.Program {
	return randomProgram(seed, -1)
}

// RandomProgramSized is RandomProgram with an explicit statement budget:
// the entry method's body contains at least nStmts statements from the
// random statement mix (in addition to the per-variable seeding
// allocations and the trailing return). Every loop iteration emits at
// least one statement — when the drawn statement kind cannot apply (no
// compatible sink/source variable, a class with no storable fields) the
// generator falls back to an allocation instead of silently skipping,
// which is what used to make programs come out smaller than requested.
func RandomProgramSized(seed int64, nStmts int) *lang.Program {
	if nStmts < 0 {
		panic("synth: RandomProgramSized: negative statement budget")
	}
	return randomProgram(seed, nStmts)
}

func randomProgram(seed int64, nStmts int) *lang.Program {
	rng := rand.New(rand.NewSource(seed))
	p := lang.NewProgram()
	obj := p.Object()

	// Class hierarchy: 3–8 classes, each extending Object or an earlier
	// class, with 0–2 fields of earlier-declared types (or Object).
	nClasses := 3 + rng.Intn(6)
	classes := make([]*lang.Class, 0, nClasses)
	for i := 0; i < nClasses; i++ {
		var super *lang.Class
		if len(classes) > 0 && rng.Intn(2) == 0 {
			super = classes[rng.Intn(len(classes))]
		}
		c := p.NewClass(fmt.Sprintf("R%d", i), super)
		classes = append(classes, c)
		for f := 0; f < rng.Intn(3); f++ {
			ft := obj
			if rng.Intn(2) == 0 {
				ft = classes[rng.Intn(len(classes))]
			}
			c.NewField(fmt.Sprintf("f%d", f), ft)
		}
	}
	// Every class overrides a virtual `m` returning Object half the time.
	baseM := classes[0].NewMethod("m", false, nil, obj)
	baseM.AddReturn(baseM.This)
	for _, c := range classes[1:] {
		if rng.Intn(2) == 0 {
			mm := c.NewMethod("m", false, nil, obj)
			mm.AddReturn(mm.This)
		}
	}

	// A static helper passing values through (context-sensitivity food).
	helperCls := p.NewClass("H", nil)
	id := helperCls.NewMethod("id", true, []*lang.Class{obj}, obj)
	id.AddReturn(id.Params[0])

	// An exception hierarchy and a thrower, to exercise the $exc flow.
	errCls := p.NewClass("Err", nil)
	ioErr := p.NewClass("IOErr", errCls)
	boom := helperCls.NewMethod("boom", true, nil, nil)
	{
		ev := boom.NewVar("ev", errCls)
		boom.AddAlloc(ev, ioErr)
		boom.AddThrow(ev)
		boom.AddReturn(nil)
	}

	mainCls := p.NewClass("Main", nil)
	m := mainCls.NewMethod("main", true, nil, nil)

	// Variables: a few of type Object, a few of random class types.
	nVars := 4 + rng.Intn(6)
	vars := make([]*lang.Var, 0, nVars)
	for i := 0; i < nVars; i++ {
		t := obj
		if rng.Intn(2) == 0 {
			t = classes[rng.Intn(len(classes))]
		}
		vars = append(vars, m.NewVar(fmt.Sprintf("v%d", i), t))
	}
	anyVar := func() *lang.Var { return vars[rng.Intn(len(vars))] }
	// sink returns a variable that can soundly receive values of static
	// type typ (typ <: var type), keeping the program Java-typable: any
	// narrowing goes through an explicit cast, whose filter guarantees
	// the runtime types conform. This property is what lets the CHA/RTA
	// comparison tests rely on receivers' static types.
	sink := func(typ *lang.Class) *lang.Var {
		for tries := 0; tries < 8; tries++ {
			v := anyVar()
			if typ.SubtypeOf(v.Type) {
				return v
			}
		}
		return nil
	}
	// source returns a variable whose values fit static type typ.
	source := func(typ *lang.Class) *lang.Var {
		for tries := 0; tries < 8; tries++ {
			v := anyVar()
			if v.Type.SubtypeOf(typ) {
				return v
			}
		}
		return nil
	}
	// allocInto seeds v with an allocation of a compatible concrete type.
	// Always succeeds: the generated hierarchy is interface-free, so a
	// concrete choice exists for every variable type.
	allocInto := func(v *lang.Var) {
		t := v.Type
		if t == obj || t.IsInterface {
			t = classes[rng.Intn(len(classes))]
		}
		c := concreteSubtype(rng, classes, t)
		if c == nil {
			c = classes[rng.Intn(len(classes))]
		}
		m.AddAlloc(v, c)
	}

	// Seed every variable with at least one allocation of a compatible
	// type so later statements have flow to observe.
	for _, v := range vars {
		allocInto(v)
	}

	if nStmts < 0 {
		nStmts = 10 + rng.Intn(25)
	}
	// emitOne attempts one randomly drawn statement kind and reports
	// whether it emitted anything. Kinds can fizzle: no sink/source of a
	// compatible type within the retry budget, or a base class with no
	// storable fields.
	emitOne := func(i int) bool {
		switch rng.Intn(9) {
		case 0: // alloc
			allocInto(anyVar())
			return true
		case 1: // copy (widening only)
			src := anyVar()
			if dst := sink(src.Type); dst != nil {
				m.AddCopy(dst, src)
				return true
			}
		case 2: // store
			base := anyVar()
			if fs := storableFields(p, base.Type); len(fs) > 0 {
				f := fs[rng.Intn(len(fs))]
				if src := source(f.Type); src != nil {
					m.AddStore(base, f, src)
					return true
				}
			}
		case 3: // load
			base := anyVar()
			if fs := storableFields(p, base.Type); len(fs) > 0 {
				f := fs[rng.Intn(len(fs))]
				if dst := sink(f.Type); dst != nil {
					m.AddLoad(dst, base, f)
					return true
				}
			}
		case 4: // explicit (checked) downcast
			src := anyVar()
			t := classes[rng.Intn(len(classes))]
			if dst := sink(t); dst != nil {
				m.AddCast(dst, t, src)
				return true
			}
		case 5: // virtual call
			recv := anyVar()
			if recv.Type.LookupMethod(lang.Sig{Name: "m", Arity: 0}) != nil {
				m.AddVirtualCall(sink(obj), recv, "m")
				return true
			}
		case 6: // static identity call
			src := anyVar()
			if dst := sink(obj); dst != nil {
				m.AddStaticCall(dst, id, src)
				return true
			}
		case 7: // call a thrower, and occasionally throw directly
			m.AddStaticCall(nil, boom)
			if rng.Intn(3) == 0 {
				ev := m.NewVar(fmt.Sprintf("ev%d", i), errCls)
				m.AddAlloc(ev, errCls)
				m.AddThrow(ev)
			}
			return true
		case 8: // catch
			if dst := sink(errCls); dst != nil {
				m.AddCatch(dst, errCls)
				return true
			}
		}
		return false
	}
	for i := 0; i < nStmts; i++ {
		if !emitOne(i) {
			// Fallback so every iteration contributes: an allocation is
			// always well-typed, keeping the emitted statement count at
			// least the requested budget.
			allocInto(anyVar())
		}
	}
	m.AddReturn(nil)
	p.SetEntry(m)
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("synth: random program (seed %d) invalid: %v", seed, err))
	}
	return p
}

// concreteSubtype picks a random allocatable (non-interface) class among
// the candidates conforming to t, falling back to t itself when no
// candidate matches. It returns nil only when there is no valid choice
// at all: t is an interface without a concrete implementor among the
// candidates. (It used to return t unconditionally in that case, which
// would panic in AddAlloc; callers must handle nil.)
func concreteSubtype(rng *rand.Rand, classes []*lang.Class, t *lang.Class) *lang.Class {
	var subs []*lang.Class
	for _, c := range classes {
		if !c.IsInterface && c.SubtypeOf(t) {
			subs = append(subs, c)
		}
	}
	if len(subs) == 0 {
		if t.IsInterface {
			return nil
		}
		return t
	}
	return subs[rng.Intn(len(subs))]
}

// storableFields lists the instance fields on static type t that a
// generator can usefully populate: fields whose declared type has at
// least one allocatable implementation in the program. A field typed by
// an implementor-free interface can never receive a non-null value in a
// closed world, and offering it just made store/load draws fizzle.
func storableFields(p *lang.Program, t *lang.Class) []*lang.Field {
	var out []*lang.Field
	for _, f := range t.InstanceFields() {
		if len(p.ConcreteSubtypes(f.Type)) > 0 {
			out = append(out, f)
		}
	}
	return out
}
