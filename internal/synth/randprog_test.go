package synth

import (
	"math/rand"
	"testing"

	"mahjong/internal/lang"
)

// TestRandomProgramSizedStatementFloor pins the statement-count contract:
// the entry body holds at least the requested number of mix statements,
// plus the >=4 seeding allocations and the trailing return. Before the
// fizzle-fallback fix, inapplicable draws (no compatible sink/source, no
// storable field) silently shrank programs below the request.
func TestRandomProgramSizedStatementFloor(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		for _, n := range []int{0, 1, 13, 40} {
			p := RandomProgramSized(seed, n)
			got := len(p.Entry.Stmts)
			// 4 is the minimum variable count, so the floor below holds
			// for every seed; the exact seeding count varies with it.
			if want := n + 4 + 1; got < want {
				t.Fatalf("seed %d n %d: entry has %d stmts, want >= %d", seed, n, got, want)
			}
		}
	}
}

func TestRandomProgramSizedDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := RandomProgramSized(seed, 25)
		b := RandomProgramSized(seed, 25)
		if as, bs := a.Stats(), b.Stats(); as != bs {
			t.Fatalf("seed %d: stats differ across runs: %+v vs %+v", seed, as, bs)
		}
	}
}

// TestRandomProgramStillValidates keeps the legacy entry point working:
// RandomProgram must keep producing valid programs (Validate panics
// inside the generator otherwise) with a plausible statement count.
func TestRandomProgramStillValidates(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := RandomProgram(seed)
		if got := len(p.Entry.Stmts); got < 10+4+1 {
			t.Fatalf("seed %d: entry has %d stmts, below the 10-statement draw floor", seed, got)
		}
	}
}

// TestConcreteSubtypeInterfaceEdge pins the fixed edge case: an interface
// with no concrete implementor among the candidates must yield nil, not
// the interface itself (allocating an interface panics downstream).
func TestConcreteSubtypeInterfaceEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := lang.NewProgram()
	iface := p.NewInterface("I")
	loner := p.NewClass("Loner", nil)

	if got := concreteSubtype(rng, []*lang.Class{loner}, iface); got != nil {
		t.Fatalf("interface with no implementor: got %v, want nil", got)
	}
	// A concrete leaf with no subtypes in the candidate list still
	// resolves to itself.
	if got := concreteSubtype(rng, nil, loner); got != loner {
		t.Fatalf("concrete type with no candidates: got %v, want the type itself", got)
	}
	impl := p.NewClass("Impl", nil, iface)
	if got := concreteSubtype(rng, []*lang.Class{loner, impl}, iface); got != impl {
		t.Fatalf("interface with implementor: got %v, want Impl", got)
	}
}

// TestStorableFieldsSkipsUnfillable pins the second fixed edge case:
// fields typed by an implementor-free interface are excluded (they can
// never be populated in a closed world), while fields of concrete or
// implemented types survive, inherited ones included.
func TestStorableFieldsSkipsUnfillable(t *testing.T) {
	p := lang.NewProgram()
	dead := p.NewInterface("Dead")
	live := p.NewInterface("Live")
	p.NewClass("LiveImpl", nil, live)
	base := p.NewClass("Base", nil)
	base.NewField("keep", p.Object())
	c := p.NewClass("C", base)
	c.NewField("drop", dead)
	c.NewField("also", live)

	fs := storableFields(p, c)
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name] = true
	}
	if !names["keep"] || !names["also"] || names["drop"] {
		t.Fatalf("storableFields = %v, want keep+also without drop", names)
	}
	if got := storableFields(p, p.Object()); len(got) != 0 {
		t.Fatalf("Object has no instance fields, got %v", got)
	}
}
