// Package synth generates the benchmark programs of the evaluation.
//
// The paper evaluates on 12 large Java programs (three applications plus
// the standard DaCapo suite minus jython and hsqldb) linked against
// JDK 1.6. Those inputs are Java bytecode and unavailable to a pure-Go,
// offline reproduction, so this package synthesizes programs with the
// same heap shapes, at configurable scale, on top of a hand-written
// mini runtime library:
//
//   - string machinery (String/char[]/StringBuilder): large numbers of
//     allocation sites that are mutually type-consistent — the heap
//     over-partitioning that Mahjong collapses (Table 1 row 1);
//   - generic containers (ArrayList/Object[]/HashMap/iterators) holding
//     different element types at different sites: same-type objects that
//     are NOT type-consistent, which the allocation-type abstraction
//     merges at a precision cost but Mahjong keeps apart (§2.1, Table 1
//     rows 2/4/5);
//   - dispatch-heavy visitor hierarchies and wrapper call chains, which
//     make context-sensitivity matter and separate the precision of
//     ci/2cs/2type/2obj/3obj;
//   - never-initialized fields, exercising the null-field distinction
//     (Table 1 row 6).
//
// Generation is deterministic per profile (seeded math/rand), so every
// table and figure regenerates bit-identically.
package synth

import "mahjong/internal/lang"

// Runtime bundles the mini runtime library classes that generated
// application code links against.
type Runtime struct {
	Prog *lang.Program

	Char      *lang.Class // the primitive-like char class
	CharArray *lang.Class
	String    *lang.Class
	Builder   *lang.Class // java.lang.StringBuilder
	ObjArray  *lang.Class // java.lang.Object[]

	ArrayList *lang.Class
	Iterator  *lang.Class
	HashMap   *lang.Class
	Entry     *lang.Class
	Box       *lang.Class // java.lang.Integer-like leaf value

	// Frequently used members.
	StringValue  *lang.Field // String.value: char[]
	BuilderValue *lang.Field // StringBuilder.value: char[]
	ListData     *lang.Field // ArrayList.elementData: Object[]
	ListAdd      *lang.Method
	ListGet      *lang.Method
	ListIterator *lang.Method
	IterNext     *lang.Method
	MapPut       *lang.Method
	MapGet       *lang.Method
	BuilderNew   *lang.Method // static StringBuilder.make()
	BuilderApp   *lang.Method // append(String): StringBuilder
	BuilderStr   *lang.Method // toString(): String
	MkString     *lang.Method // static String.make(): String
}

// NewRuntime builds the mini runtime library into a fresh program.
func NewRuntime() *Runtime {
	p := lang.NewProgram()
	obj := p.Object()
	rt := &Runtime{Prog: p}

	rt.Char = p.NewClass("char", nil)
	rt.CharArray = p.ArrayOf(rt.Char)

	// java.lang.String
	rt.String = p.NewClass("java.lang.String", nil)
	rt.StringValue = rt.String.NewField("value", rt.CharArray)
	{
		// static String.make(): String — allocates the String and its
		// backing char[] (the canonical type-consistent pattern).
		mk := rt.String.NewMethod("make", true, nil, rt.String)
		s := mk.NewVar("s", rt.String)
		cs := mk.NewVar("cs", rt.CharArray)
		mk.AddAlloc(s, rt.String)
		mk.AddAlloc(cs, rt.CharArray)
		mk.AddStore(s, rt.StringValue, cs)
		mk.AddReturn(s)
		rt.MkString = mk

		// String.concat(String): String
		concat := rt.String.NewMethod("concat", false, []*lang.Class{rt.String}, rt.String)
		out := concat.NewVar("out", rt.String)
		cs2 := concat.NewVar("cs", rt.CharArray)
		concat.AddAlloc(out, rt.String)
		concat.AddAlloc(cs2, rt.CharArray)
		concat.AddStore(out, rt.StringValue, cs2)
		concat.AddReturn(out)
	}

	// java.lang.StringBuilder
	rt.Builder = p.NewClass("java.lang.StringBuilder", nil)
	rt.BuilderValue = rt.Builder.NewField("value", rt.CharArray)
	{
		mk := rt.Builder.NewMethod("make", true, nil, rt.Builder)
		b := mk.NewVar("b", rt.Builder)
		cs := mk.NewVar("cs", rt.CharArray)
		mk.AddAlloc(b, rt.Builder)
		mk.AddAlloc(cs, rt.CharArray)
		mk.AddStore(b, rt.BuilderValue, cs)
		mk.AddReturn(b)
		rt.BuilderNew = mk

		app := rt.Builder.NewMethod("append", false, []*lang.Class{rt.String}, rt.Builder)
		cs3 := app.NewVar("cs", rt.CharArray)
		app.AddAlloc(cs3, rt.CharArray) // buffer growth
		app.AddStore(app.This, rt.BuilderValue, cs3)
		app.AddReturn(app.This)
		rt.BuilderApp = app

		ts := rt.Builder.NewMethod("toString", false, nil, rt.String)
		s := ts.NewVar("s", rt.String)
		v := ts.NewVar("v", rt.CharArray)
		ts.AddAlloc(s, rt.String)
		ts.AddLoad(v, ts.This, rt.BuilderValue)
		ts.AddStore(s, rt.StringValue, v)
		ts.AddReturn(s)
		rt.BuilderStr = ts
	}

	rt.ObjArray = p.ArrayOf(obj)
	elem := rt.ObjArray.Field(lang.ElemField)

	// java.util.ArrayList
	rt.ArrayList = p.NewClass("java.util.ArrayList", nil)
	rt.ListData = rt.ArrayList.NewField("elementData", rt.ObjArray)
	{
		init := rt.ArrayList.NewMethod("init", false, nil, nil)
		d := init.NewVar("d", rt.ObjArray)
		init.AddAlloc(d, rt.ObjArray)
		init.AddStore(init.This, rt.ListData, d)
		init.AddReturn(nil)

		add := rt.ArrayList.NewMethod("add", false, []*lang.Class{obj}, nil)
		d2 := add.NewVar("d", rt.ObjArray)
		add.AddLoad(d2, add.This, rt.ListData)
		add.AddStore(d2, elem, add.Params[0])
		add.AddReturn(nil)
		rt.ListAdd = add

		get := rt.ArrayList.NewMethod("get", false, nil, obj)
		d3 := get.NewVar("d", rt.ObjArray)
		v := get.NewVar("v", obj)
		get.AddLoad(d3, get.This, rt.ListData)
		get.AddLoad(v, d3, elem)
		get.AddReturn(v)
		rt.ListGet = get
	}

	// java.util.Iterator over ArrayList
	rt.Iterator = p.NewClass("java.util.Iterator", nil)
	ownerF := rt.Iterator.NewField("owner", rt.ArrayList)
	{
		next := rt.Iterator.NewMethod("next", false, nil, obj)
		o := next.NewVar("o", rt.ArrayList)
		v := next.NewVar("v", obj)
		next.AddLoad(o, next.This, ownerF)
		next.AddVirtualCall(v, o, "get")
		next.AddReturn(v)
		rt.IterNext = next

		it := rt.ArrayList.NewMethod("iterator", false, nil, rt.Iterator)
		iv := it.NewVar("iv", rt.Iterator)
		it.AddAlloc(iv, rt.Iterator)
		it.AddStore(iv, ownerF, it.This)
		it.AddReturn(iv)
		rt.ListIterator = it
	}

	// java.util.HashMap with chained entries
	rt.Entry = p.NewClass("java.util.HashMap$Entry", nil)
	keyF := rt.Entry.NewField("key", obj)
	valF := rt.Entry.NewField("value", obj)
	nextF := rt.Entry.NewField("next", rt.Entry)
	rt.HashMap = p.NewClass("java.util.HashMap", nil)
	tableF := rt.HashMap.NewField("table", p.ArrayOf(rt.Entry))
	entryArr := p.ArrayOf(rt.Entry)
	entryElem := entryArr.Field(lang.ElemField)
	{
		init := rt.HashMap.NewMethod("init", false, nil, nil)
		tb := init.NewVar("tb", entryArr)
		init.AddAlloc(tb, entryArr)
		init.AddStore(init.This, tableF, tb)
		init.AddReturn(nil)

		put := rt.HashMap.NewMethod("put", false, []*lang.Class{obj, obj}, nil)
		tb2 := put.NewVar("tb", entryArr)
		e := put.NewVar("e", rt.Entry)
		old := put.NewVar("old", rt.Entry)
		put.AddLoad(tb2, put.This, tableF)
		put.AddAlloc(e, rt.Entry)
		put.AddStore(e, keyF, put.Params[0])
		put.AddStore(e, valF, put.Params[1])
		put.AddLoad(old, tb2, entryElem)
		put.AddStore(e, nextF, old)
		put.AddStore(tb2, entryElem, e)
		put.AddReturn(nil)
		rt.MapPut = put

		get := rt.HashMap.NewMethod("get", false, []*lang.Class{obj}, obj)
		tb3 := get.NewVar("tb", entryArr)
		e2 := get.NewVar("e", rt.Entry)
		v := get.NewVar("v", obj)
		get.AddLoad(tb3, get.This, tableF)
		get.AddLoad(e2, tb3, entryElem)
		get.AddLoad(v, e2, valF)
		get.AddReturn(v)
		rt.MapGet = get
	}

	// java.lang.Integer-like leaf value type.
	rt.Box = p.NewClass("java.lang.Integer", nil)
	rt.Box.NewMethod("intValue", false, nil, nil).AddReturn(nil)

	return rt
}
