package synth

import (
	"testing"

	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/fpg"
	"mahjong/internal/lang"
	"mahjong/internal/pta"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("profiles=%d want 12", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"eclipse", "checkstyle", "pmd", "luindex", "JPC", "findbugs"} {
		if !seen[want] {
			t.Fatalf("missing profile %s", want)
		}
	}
	if _, err := ProfileByName("eclipse"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("no-such"); err == nil {
		t.Fatal("want error for unknown profile")
	}
	if got := len(ProfileNames()); got != 12 {
		t.Fatalf("names=%d", got)
	}
}

func TestGenerateAllValid(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			st := prog.Stats()
			if st.AllocSites < 100 {
				t.Fatalf("%s too small: %+v", p.Name, st)
			}
			if st.Classes < 20 {
				t.Fatalf("%s too few classes: %+v", p.Name, st)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("luindex")
	a := MustGenerate(p)
	b := MustGenerate(p)
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	// Same alloc-site labels in the same order.
	for i := range a.Sites {
		if a.Sites[i].Label != b.Sites[i].Label {
			t.Fatalf("site %d: %q vs %q", i, a.Sites[i].Label, b.Sites[i].Label)
		}
	}
}

// TestPipelineShape runs the full Mahjong pipeline on the smallest
// benchmark and checks the qualitative shape the paper reports.
func TestPipelineShape(t *testing.T) {
	p, _ := ProfileByName("luindex")
	prog := MustGenerate(p)

	pre, err := pta.Solve(prog, pta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Aborted {
		t.Fatal("pre-analysis aborted")
	}
	g := fpg.Build(pre, fpg.Options{})
	res := core.Build(g, core.Options{})

	// Mahjong must merge a substantial fraction of the heap: the paper
	// reports an average 62% object reduction (Figure 8). The synthetic
	// programs should land in a broad 30–90% band.
	red := res.Reduction()
	if red < 0.30 || red > 0.95 {
		t.Fatalf("reduction=%.2f outside [0.30, 0.95]", red)
	}

	// Precision shape (§2.1): alloc-site ⊑ mahjong ⊑ alloc-type for the
	// three clients; and mahjong ≈ alloc-site.
	base := clients.Evaluate(pre)
	mh, err := pta.Solve(prog, pta.Options{Heap: res.HeapModel()})
	if err != nil {
		t.Fatal(err)
	}
	mhM := clients.Evaluate(mh)
	ty, err := pta.Solve(prog, pta.Options{Heap: pta.NewAllocTypeModel()})
	if err != nil {
		t.Fatal(err)
	}
	tyM := clients.Evaluate(ty)

	if mhM.CallGraphEdges < base.CallGraphEdges {
		t.Fatalf("mahjong lost call edges: %d < %d (unsound)", mhM.CallGraphEdges, base.CallGraphEdges)
	}
	if tyM.PolyCallSites < mhM.PolyCallSites || tyM.MayFailCasts < mhM.MayFailCasts {
		t.Fatalf("alloc-type more precise than mahjong: %+v vs %+v", tyM, mhM)
	}
	// Near-losslessness: within 2% on call graph edges.
	if float64(mhM.CallGraphEdges) > 1.02*float64(base.CallGraphEdges) {
		t.Fatalf("mahjong call edges %d vs baseline %d: >2%% loss", mhM.CallGraphEdges, base.CallGraphEdges)
	}
	// Alloc-type must be visibly less precise on may-fail casts.
	if tyM.MayFailCasts <= mhM.MayFailCasts {
		t.Fatalf("alloc-type casts %d should exceed mahjong %d", tyM.MayFailCasts, mhM.MayFailCasts)
	}

	// Object counts: type ≤ mahjong ≤ alloc-site.
	nType, nMahjong, nSite := len(ty.Objs()), res.NumMerged, res.NumObjects
	if !(nType <= nMahjong && nMahjong <= nSite) {
		t.Fatalf("object counts out of order: type=%d mahjong=%d site=%d", nType, nMahjong, nSite)
	}
}

func TestFigure1Helper(t *testing.T) {
	f := NewFigure1()
	if len(f.Sites) != 6 || f.Call == nil || f.Cast == nil {
		t.Fatal("Figure1 incomplete")
	}
	st := f.Prog.Stats()
	if st.AllocSites != 6 {
		t.Fatalf("sites=%d", st.AllocSites)
	}
}

// TestDiverseDocsDefeatMerging ties the DiverseDocs knob to its
// purpose: the diverse profiles merge a visibly smaller fraction of the
// heap than their consistent counterparts.
func TestDiverseDocsDefeatMerging(t *testing.T) {
	reduction := func(name string) float64 {
		t.Helper()
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := MustGenerate(p)
		pre, err := pta.Solve(prog, pta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := fpg.Build(pre, fpg.Options{})
		return core.Build(g, core.Options{}).Reduction()
	}
	consistent := reduction("pmd") // type-consistent documents
	diverse := reduction("JPC")    // per-site content classes
	if diverse >= consistent {
		t.Fatalf("diverse reduction %.2f should be below consistent %.2f", diverse, consistent)
	}
	if consistent < 0.85 {
		t.Fatalf("consistent profile merges too little: %.2f", consistent)
	}
}

func TestRandomProgramsValidateAndVary(t *testing.T) {
	statsSeen := map[lang.Stats]bool{}
	for seed := int64(0); seed < 30; seed++ {
		prog := RandomProgram(seed)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v", seed, err)
		}
		statsSeen[prog.Stats()] = true
	}
	if len(statsSeen) < 20 {
		t.Fatalf("random programs too uniform: %d distinct shapes of 30", len(statsSeen))
	}
}
