package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Counter is one exported per-span delta.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// SpanInfo is one exported span. IDs are pre-order positions in the
// span tree; Parent is -1 for top-level spans. Times are monotonic
// nanoseconds relative to the tracer's start; DurNS is -1 for a span
// that was never closed (WellFormed rejects such traces).
type SpanInfo struct {
	ID       int       `json:"id"`
	Parent   int       `json:"parent"`
	Stage    string    `json:"stage"`
	Worker   int       `json:"worker"` // -1 unless attributed to a merge worker
	StartNS  int64     `json:"start_ns"`
	DurNS    int64     `json:"dur_ns"`
	Fail     string    `json:"fail,omitempty"`
	Error    string    `json:"error,omitempty"`
	Counters []Counter `json:"counters,omitempty"`
}

// Trace is a deterministic export of one tracer's spans: siblings
// ordered by (worker, creation order), IDs renumbered in pre-order,
// counters sorted by name. Two runs of the same program with the same
// options produce identical traces after Scrub.
type Trace struct {
	Version int        `json:"version"`
	Start   string     `json:"start,omitempty"` // wall-clock RFC3339Nano; scrubbed in goldens
	Spans   []SpanInfo `json:"spans"`
}

// Snapshot exports the tracer's current spans. Safe to call while spans
// are still being recorded (open spans export with DurNS = -1), though
// the usual call site is after the run completes.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return &Trace{Version: 1}
	}
	t.mu.Lock()
	recs := make([]spanRec, len(t.spans))
	copy(recs, t.spans)
	t.mu.Unlock()

	// Collect children per parent in creation order, then sort siblings
	// by (worker, creation order): creation order is deterministic for
	// spans opened from a single goroutine, and the per-worker merge
	// spans — the only concurrently created ones — are disambiguated by
	// their distinct worker indices.
	roots := make([]int, 0, 4)
	children := make([][]int, len(recs))
	for i := range recs {
		if p := recs[i].parent; p >= 0 {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	orderSiblings := func(list []int) {
		sort.SliceStable(list, func(a, b int) bool {
			ra, rb := &recs[list[a]], &recs[list[b]]
			if ra.worker != rb.worker {
				return ra.worker < rb.worker
			}
			return list[a] < list[b]
		})
	}
	orderSiblings(roots)
	for i := range children {
		orderSiblings(children[i])
	}

	out := &Trace{
		Version: 1,
		Start:   t.base.Format(time.RFC3339Nano),
		Spans:   make([]SpanInfo, 0, len(recs)),
	}
	var walk func(i, parent int)
	walk = func(i, parent int) {
		r := &recs[i]
		si := SpanInfo{
			ID:      len(out.Spans),
			Parent:  parent,
			Stage:   r.stage,
			Worker:  int(r.worker),
			StartNS: r.start.Nanoseconds(),
			DurNS:   -1,
		}
		if r.end >= 0 {
			si.DurNS = (r.end - r.start).Nanoseconds()
		}
		si.Fail = r.fail
		si.Error = r.errMsg
		if len(r.counters) > 0 {
			si.Counters = make([]Counter, len(r.counters))
			for j, c := range r.counters {
				si.Counters[j] = Counter{Name: c.name, Value: c.value}
			}
			sort.Slice(si.Counters, func(a, b int) bool {
				return si.Counters[a].Name < si.Counters[b].Name
			})
		}
		out.Spans = append(out.Spans, si)
		id := si.ID
		for _, c := range children[i] {
			walk(c, id)
		}
	}
	for _, r := range roots {
		walk(r, -1)
	}
	return out
}

// Counter returns the named counter's value and whether it is present.
func (s *SpanInfo) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// WellFormed checks the structural invariants the span-accounting tests
// rely on: every span closed, parents emitted before (and temporally
// containing) their children, and parent references in range.
func (t *Trace) WellFormed() error {
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.ID != i {
			return fmt.Errorf("span %d: id %d out of pre-order", i, s.ID)
		}
		if s.DurNS < 0 {
			return fmt.Errorf("span %d (%s): never closed", i, s.Stage)
		}
		switch {
		case s.Parent == -1:
			// top-level span
		case s.Parent < 0 || s.Parent >= len(t.Spans):
			return fmt.Errorf("span %d (%s): parent %d out of range", i, s.Stage, s.Parent)
		case s.Parent >= i:
			return fmt.Errorf("span %d (%s): parent %d not emitted first", i, s.Stage, s.Parent)
		default:
			p := &t.Spans[s.Parent]
			if s.StartNS < p.StartNS || s.StartNS+s.DurNS > p.StartNS+p.DurNS {
				return fmt.Errorf("span %d (%s) [%d,%d] outlives parent %s [%d,%d]",
					i, s.Stage, s.StartNS, s.StartNS+s.DurNS,
					p.Stage, p.StartNS, p.StartNS+p.DurNS)
			}
		}
	}
	return nil
}

// Scrub zeroes every nondeterministic field (wall clock, span times,
// error message text) so two traces of the same run compare byte-equal.
// Failure *classes* survive scrubbing; only the free-text messages go.
func (t *Trace) Scrub() {
	t.Start = ""
	for i := range t.Spans {
		t.Spans[i].StartNS = 0
		t.Spans[i].DurNS = 0
		t.Spans[i].Error = ""
	}
}

// WriteJSON writes the trace as indented JSON. Output is deterministic:
// field order is fixed by the struct definitions and all collections
// are sorted slices (no map iteration anywhere on this path).
func (t *Trace) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteTree renders the span tree as indented text, one span per line —
// the format of the slow-job log.
func (t *Trace) WriteTree(w io.Writer) {
	depth := make([]int, len(t.Spans))
	for i := range t.Spans {
		s := &t.Spans[i]
		if s.Parent >= 0 && s.Parent < i {
			depth[i] = depth[s.Parent] + 1
		}
		var b strings.Builder
		for d := 0; d < depth[i]; d++ {
			b.WriteString("  ")
		}
		b.WriteString(s.Stage)
		if s.Worker >= 0 {
			fmt.Fprintf(&b, "[w%d]", s.Worker)
		}
		if s.DurNS >= 0 {
			fmt.Fprintf(&b, " %s", time.Duration(s.DurNS).Round(time.Microsecond))
		} else {
			b.WriteString(" open")
		}
		if s.Fail != "" {
			fmt.Fprintf(&b, " FAILED(%s)", s.Fail)
			if s.Error != "" {
				fmt.Fprintf(&b, ": %s", s.Error)
			}
		}
		for _, c := range s.Counters {
			fmt.Fprintf(&b, " %s=%d", c.Name, c.Value)
		}
		b.WriteByte('\n')
		io.WriteString(w, b.String())
	}
}
