// Package trace is the pipeline's span tracer: a zero-dependency,
// allocation-conscious recorder of where one analysis run spent its
// time and work.
//
// A span covers one execution of one pipeline stage — its name is a
// stage constant from the faultinject registry ("pta.solve",
// "fpg.build", "core.build", …; mahjongvet's stagehook analyzer rejects
// any other name) — and records monotonic start/end times, its parent
// span, an optional worker attribution for the heap modeler's parallel
// merge workers, a failure tag when the stage did not complete, and
// per-span counter deltas (propagated facts, merge pairs, collapsed
// cycles, …). The counters double as a machine-checkable oracle: the
// span-accounting tests cross-check them against pta.Stats and the
// /metrics totals, so a stage that stops reporting its work breaks a
// test instead of a dashboard.
//
// Tracing is opt-in and nil-safe throughout: the zero Ctx and the zero
// Span no-op on every method, so untraced runs pay one nil check per
// stage boundary and allocate nothing. Traced runs append fixed-size
// records to one slice under a mutex (the only synchronization, shared
// with the parallel merge workers).
//
// Snapshot converts the records into an exportable Trace with a
// deterministic collect-sort-emit pass: siblings are ordered by
// (worker, creation order), IDs are renumbered in pre-order, and
// counters are sorted by name, so two runs of the same program differ
// only in their timestamps (which Scrub normalizes for golden tests).
package trace

import (
	"context"
	"errors"
	"sync"
	"time"

	"mahjong/internal/budget"
	"mahjong/internal/failure"
)

// Failure classes a span can close with. Empty means the stage
// completed normally.
const (
	// FailPanic: the stage panicked and a stage guard recovered it
	// (the error is a *failure.InternalError).
	FailPanic = "panic"
	// FailCancelled: context cancellation or deadline expiry.
	FailCancelled = "cancelled"
	// FailBudget: a resource budget or the legacy work budget ran out.
	FailBudget = "budget"
	// FailAborted: the span was force-closed while a budget/cancel
	// sentinel (or a panic) unwound through it; the enclosing stage's
	// span carries the precise class.
	FailAborted = "aborted"
	// FailError: any other error.
	FailError = "error"
)

// Classify maps a stage error to its failure class ("" for nil).
func Classify(err error) string {
	if err == nil {
		return ""
	}
	var ie *failure.InternalError
	if errors.As(err, &ie) {
		return FailPanic
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return FailCancelled
	}
	if errors.Is(err, budget.ErrExhausted) {
		return FailBudget
	}
	return FailError
}

// counter is one named per-span delta.
type counter struct {
	name  string
	value int64
}

// spanRec is the in-flight record of one span. Times are monotonic
// offsets from the tracer's base; end < 0 marks an open span.
type spanRec struct {
	stage    string
	parent   int32
	worker   int32 // -1 unless attributed to a merge worker
	start    time.Duration
	end      time.Duration
	fail     string
	errMsg   string
	counters []counter
}

// Tracer collects the spans of one pipeline run (one CLI invocation or
// one mahjongd job attempt). Safe for concurrent use.
type Tracer struct {
	base  time.Time // monotonic anchor; also the run's wall-clock start
	mu    sync.Mutex
	spans []spanRec
}

// New returns an empty tracer anchored at the current time.
func New() *Tracer { return &Tracer{base: time.Now()} }

// Root returns the attachment point for top-level spans. A nil tracer
// yields the zero (disabled) Ctx.
func (t *Tracer) Root() Ctx {
	if t == nil {
		return Ctx{}
	}
	return Ctx{tr: t, parent: -1}
}

// Ctx names where new spans attach: a tracer plus a parent span. The
// zero value is disabled — Start returns the zero Span and records
// nothing — so stage options embed a Ctx at no cost to untraced runs.
type Ctx struct {
	tr     *Tracer
	parent int32
}

// Enabled reports whether spans started from this Ctx are recorded.
func (c Ctx) Enabled() bool { return c.tr != nil }

// Start opens a span for the named pipeline stage. Stage must be one of
// the faultinject Stage* constants (enforced statically by mahjongvet's
// stagehook analyzer).
func (c Ctx) Start(stage string) Span {
	if c.tr == nil {
		return Span{}
	}
	t := c.tr
	t.mu.Lock()
	id := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{
		stage:  stage,
		parent: c.parent,
		worker: -1,
		start:  time.Since(t.base),
		end:    -1,
	})
	t.mu.Unlock()
	return Span{tr: t, id: id}
}

// Span is a handle on one recorded span. The zero Span no-ops on every
// method. The first close (End, Close, FailTag, CloseAborted) wins;
// later closes are ignored, which lets a deferred CloseAborted act as a
// panic/sentinel backstop behind the normal End path.
type Span struct {
	tr *Tracer
	id int32
}

// Ctx returns the attachment point for this span's children.
func (s Span) Ctx() Ctx {
	if s.tr == nil {
		return Ctx{}
	}
	return Ctx{tr: s.tr, parent: s.id}
}

// Worker attributes the span to merge worker i (spans are unattributed
// by default).
func (s Span) Worker(i int) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.spans[s.id].worker = int32(i)
	s.tr.mu.Unlock()
}

// Add accumulates a named counter delta on the span.
func (s Span) Add(name string, delta int64) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	r := &s.tr.spans[s.id]
	for i := range r.counters {
		if r.counters[i].name == name {
			r.counters[i].value += delta
			s.tr.mu.Unlock()
			return
		}
	}
	r.counters = append(r.counters, counter{name: name, value: delta})
	s.tr.mu.Unlock()
}

// End closes the span successfully.
func (s Span) End() { s.close("", "") }

// Close closes the span, tagging it with err's failure class (a nil err
// closes successfully).
func (s Span) Close(err error) {
	if err == nil {
		s.close("", "")
		return
	}
	s.close(Classify(err), err.Error())
}

// FailTag closes the span with an explicit failure class and message.
func (s Span) FailTag(class, msg string) { s.close(class, msg) }

// CloseAborted closes the span as FailAborted if it is still open. Used
// as a deferred backstop inside stages that unwind via panic sentinels
// (budget exhaustion, cancellation) or genuine panics: the span closes
// during the unwind instead of dangling, and the enclosing stage's span
// records the precise failure.
func (s Span) CloseAborted() { s.close(FailAborted, "") }

// close records the end time once; subsequent calls no-op.
func (s Span) close(class, msg string) {
	if s.tr == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	r := &t.spans[s.id]
	if r.end < 0 {
		r.end = time.Since(t.base)
		r.fail = class
		r.errMsg = msg
	}
	t.mu.Unlock()
}
