package trace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mahjong/internal/budget"
	"mahjong/internal/failure"
)

func TestZeroValuesNoOp(t *testing.T) {
	var c Ctx
	if c.Enabled() {
		t.Fatal("zero Ctx reports Enabled")
	}
	sp := c.Start("pta.solve")
	sp.Add("work", 1)
	sp.Worker(3)
	sp.End()
	sp.Close(errors.New("x"))
	sp.CloseAborted()
	if sub := sp.Ctx(); sub.Enabled() {
		t.Fatal("zero Span yields enabled Ctx")
	}
	var tr *Tracer
	if tr.Root().Enabled() {
		t.Fatal("nil Tracer yields enabled Ctx")
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 0 || snap.WellFormed() != nil {
		t.Fatalf("nil tracer snapshot not empty/well-formed: %+v", snap)
	}
}

func TestSpanTreeAndCounters(t *testing.T) {
	tr := New()
	root := tr.Root().Start("server.job")
	solve := root.Ctx().Start("pta.solve")
	collapse := solve.Ctx().Start("pta.collapse")
	collapse.Add("collapsed_sccs", 2)
	collapse.Add("collapsed_sccs", 3) // accumulates
	collapse.Add("collapsed_nodes", 7)
	collapse.End()
	solve.End()
	root.End()

	snap := tr.Snapshot()
	if err := snap.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	stages := []string{snap.Spans[0].Stage, snap.Spans[1].Stage, snap.Spans[2].Stage}
	want := []string{"server.job", "pta.solve", "pta.collapse"}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("pre-order stages %v, want %v", stages, want)
		}
	}
	if snap.Spans[0].Parent != -1 || snap.Spans[1].Parent != 0 || snap.Spans[2].Parent != 1 {
		t.Fatalf("parents wrong: %+v", snap.Spans)
	}
	c := snap.Spans[2]
	if v, ok := c.Counter("collapsed_sccs"); !ok || v != 5 {
		t.Fatalf("collapsed_sccs = %d (%v), want 5", v, ok)
	}
	// Counters are name-sorted in the export.
	if c.Counters[0].Name != "collapsed_nodes" || c.Counters[1].Name != "collapsed_sccs" {
		t.Fatalf("counters not sorted: %+v", c.Counters)
	}
}

func TestFirstCloseWins(t *testing.T) {
	tr := New()
	sp := tr.Root().Start("pta.solve")
	sp.FailTag(FailPanic, "boom")
	sp.End() // must not clear the failure
	got := tr.Snapshot().Spans[0]
	if got.Fail != FailPanic || got.Error != "boom" {
		t.Fatalf("fail=%q error=%q, want panic/boom", got.Fail, got.Error)
	}

	tr2 := New()
	sp2 := tr2.Root().Start("pta.solve")
	sp2.End()
	sp2.CloseAborted() // deferred backstop after a normal End
	if got := tr2.Snapshot().Spans[0]; got.Fail != "" {
		t.Fatalf("CloseAborted overrode a successful close: %q", got.Fail)
	}
}

func TestOpenSpanRejected(t *testing.T) {
	tr := New()
	tr.Root().Start("pta.solve") // never closed
	snap := tr.Snapshot()
	if snap.Spans[0].DurNS != -1 {
		t.Fatalf("open span exported DurNS=%d, want -1", snap.Spans[0].DurNS)
	}
	if err := snap.WellFormed(); err == nil || !strings.Contains(err.Error(), "never closed") {
		t.Fatalf("WellFormed = %v, want never-closed error", err)
	}
}

func TestWellFormedRejectsOutlivingChild(t *testing.T) {
	snap := &Trace{Version: 1, Spans: []SpanInfo{
		{ID: 0, Parent: -1, Stage: "server.job", Worker: -1, StartNS: 0, DurNS: 100},
		{ID: 1, Parent: 0, Stage: "pta.solve", Worker: -1, StartNS: 50, DurNS: 100},
	}}
	if err := snap.WellFormed(); err == nil || !strings.Contains(err.Error(), "outlives") {
		t.Fatalf("WellFormed = %v, want outlives error", err)
	}
}

func TestWorkerSpanOrderDeterministic(t *testing.T) {
	// Worker spans are created concurrently (racy creation order) but
	// must export in worker order.
	for round := 0; round < 10; round++ {
		tr := New()
		root := tr.Root().Start("core.build")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sp := root.Ctx().Start("automata.equiv")
				sp.Worker(w)
				sp.Add("merge_pairs", int64(w))
				sp.End()
			}(w)
		}
		wg.Wait()
		root.End()
		snap := tr.Snapshot()
		if err := snap.WellFormed(); err != nil {
			t.Fatal(err)
		}
		for i, s := range snap.Spans[1:] {
			if s.Worker != i {
				t.Fatalf("round %d: span %d has worker %d, want %d", round, i+1, s.Worker, i)
			}
			if v, _ := s.Counter("merge_pairs"); v != int64(i) {
				t.Fatalf("round %d: worker %d carries pairs=%d", round, i, v)
			}
		}
	}
}

func TestScrubbedExportDeterministic(t *testing.T) {
	run := func() []byte {
		tr := New()
		root := tr.Root().Start("server.job")
		solve := root.Ctx().Start("pta.solve")
		solve.Add("work", 42)
		solve.Close(fmt.Errorf("wrapped: %w", context.Canceled))
		root.End()
		snap := tr.Snapshot()
		snap.Scrub()
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("scrubbed exports differ:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"fail": "cancelled"`)) {
		t.Fatalf("failure class scrubbed away:\n%s", a)
	}
	if bytes.Contains(a, []byte("wrapped")) {
		t.Fatalf("error text survived scrubbing:\n%s", a)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.Canceled, FailCancelled},
		{fmt.Errorf("pta: %w", context.DeadlineExceeded), FailCancelled},
		{fmt.Errorf("fpg: %w", budget.ErrExhausted), FailBudget},
		{&failure.InternalError{Stage: "pta.solve", Value: "boom"}, FailPanic},
		{errors.New("plain"), FailError},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestWriteTree(t *testing.T) {
	tr := New()
	root := tr.Root().Start("server.job")
	solve := root.Ctx().Start("pta.solve")
	solve.Add("work", 7)
	solve.FailTag(FailBudget, "out of facts")
	root.End()
	var buf bytes.Buffer
	tr.Snapshot().WriteTree(&buf)
	out := buf.String()
	if !strings.Contains(out, "server.job") ||
		!strings.Contains(out, "  pta.solve") ||
		!strings.Contains(out, "FAILED(budget): out of facts") ||
		!strings.Contains(out, "work=7") {
		t.Fatalf("tree rendering missing pieces:\n%s", out)
	}
}
