// Package unionfind implements a disjoint-set forest with union by rank
// and path compression, as used by Mahjong's heap modeler (Algorithm 1)
// and by the Hopcroft–Karp automata equivalence checker (Algorithm 4).
//
// With both heuristics the amortized cost of each operation is effectively
// constant (inverse Ackermann), which §5 of the paper relies on.
package unionfind

import "sync/atomic"

// Forest is a disjoint-set forest over the integers [0, n).
// The zero value is an empty forest; use New or Grow to add elements.
//
// Concurrency: the heap modeler's merge workers call Union from
// multiple goroutines on provably disjoint trees (merging never crosses
// type groups), which keeps the parent/rank element writes race-free by
// partition. The set counter is the one piece of state those disjoint
// unions share, so it alone is atomic.
type Forest struct {
	parent []int32
	rank   []int8
	sets   atomic.Int64
}

// New returns a forest of n singleton sets {0}, {1}, …, {n-1}.
func New(n int) *Forest {
	f := &Forest{
		parent: make([]int32, n),
		rank:   make([]int8, n),
	}
	f.sets.Store(int64(n))
	for i := range f.parent {
		f.parent[i] = int32(i)
	}
	return f
}

// Grow extends the forest so that it contains at least n elements,
// adding new elements as singletons.
func (f *Forest) Grow(n int) {
	if n <= len(f.parent) {
		return
	}
	old := len(f.parent)
	f.parent = append(f.parent, make([]int32, n-old)...)
	f.rank = append(f.rank, make([]int8, n-old)...)
	for i := old; i < n; i++ {
		f.parent[i] = int32(i)
	}
	f.sets.Add(int64(n - old))
}

// Len returns the number of elements in the forest.
func (f *Forest) Len() int { return len(f.parent) }

// Sets returns the current number of disjoint sets.
func (f *Forest) Sets() int { return int(f.sets.Load()) }

// Find returns the representative of the set containing x,
// compressing the path from x to the root.
func (f *Forest) Find(x int) int {
	root := x
	for int(f.parent[root]) != root {
		root = int(f.parent[root])
	}
	for int(f.parent[x]) != root {
		x, f.parent[x] = int(f.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false when they were already in the same set).
func (f *Forest) Union(x, y int) bool {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return false
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = int32(rx)
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.sets.Add(-1)
	return true
}

// Same reports whether x and y are in the same set.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Classes returns the members of every set with at least one element,
// keyed by representative. Members appear in ascending order.
func (f *Forest) Classes() map[int][]int {
	out := make(map[int][]int, f.sets.Load())
	for x := range f.parent {
		r := f.Find(x)
		out[r] = append(out[r], x)
	}
	return out
}
