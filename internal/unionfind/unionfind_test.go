package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	f := New(5)
	if f.Len() != 5 || f.Sets() != 5 {
		t.Fatalf("len=%d sets=%d", f.Len(), f.Sets())
	}
	for i := 0; i < 5; i++ {
		if f.Find(i) != i {
			t.Fatalf("Find(%d)=%d", i, f.Find(i))
		}
	}
}

func TestUnionFind(t *testing.T) {
	f := New(6)
	if !f.Union(0, 1) {
		t.Fatal("first union reported no change")
	}
	if f.Union(1, 0) {
		t.Fatal("repeated union reported change")
	}
	f.Union(2, 3)
	f.Union(0, 3)
	if !f.Same(1, 2) {
		t.Fatal("1 and 2 should be joined")
	}
	if f.Same(0, 4) {
		t.Fatal("0 and 4 should be disjoint")
	}
	if f.Sets() != 3 { // {0,1,2,3}, {4}, {5}
		t.Fatalf("sets=%d want 3", f.Sets())
	}
}

func TestGrow(t *testing.T) {
	var f Forest
	f.Grow(3)
	f.Union(0, 2)
	f.Grow(5)
	if f.Len() != 5 || f.Sets() != 4 {
		t.Fatalf("len=%d sets=%d", f.Len(), f.Sets())
	}
	if !f.Same(0, 2) || f.Same(0, 3) {
		t.Fatal("grow corrupted existing sets")
	}
	f.Grow(2) // shrinking request is a no-op
	if f.Len() != 5 {
		t.Fatal("Grow shrank the forest")
	}
}

func TestClasses(t *testing.T) {
	f := New(5)
	f.Union(0, 4)
	f.Union(1, 2)
	cls := f.Classes()
	if len(cls) != 3 {
		t.Fatalf("classes=%d want 3", len(cls))
	}
	total := 0
	for rep, members := range cls {
		total += len(members)
		for _, m := range members {
			if f.Find(m) != rep {
				t.Fatalf("member %d has rep %d, keyed under %d", m, f.Find(m), rep)
			}
		}
	}
	if total != 5 {
		t.Fatalf("members total %d want 5", total)
	}
}

// TestQuickEquivalence checks that union-find implements exactly the
// reflexive-transitive-symmetric closure of the union edges, against a
// naive reachability model.
func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		uf := New(n)
		// naive model: adjacency + BFS
		adj := make([][]int, n)
		for i := 0; i < n+10; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			uf.Union(a, b)
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		reach := func(a, b int) bool {
			seen := make([]bool, n)
			stack := []int{a}
			seen[a] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if x == b {
					return true
				}
				for _, y := range adj[x] {
					if !seen[y] {
						seen[y] = true
						stack = append(stack, y)
					}
				}
			}
			return false
		}
		for i := 0; i < 50; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if uf.Same(a, b) != reach(a, b) {
				return false
			}
		}
		// set count == number of connected components
		comp := 0
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			if seen[i] {
				continue
			}
			comp++
			stack := []int{i}
			seen[i] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, y := range adj[x] {
					if !seen[y] {
						seen[y] = true
						stack = append(stack, y)
					}
				}
			}
		}
		return comp == uf.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 14
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		f := New(n)
		for j := 0; j < n; j++ {
			f.Union(rng.Intn(n), rng.Intn(n))
		}
	}
}
