// Package mahjong is the public API of this repository: a Go
// implementation of MAHJONG, the heap abstraction of
//
//	Tian Tan, Yue Li, Jingling Xue.
//	"Efficient and Precise Points-to Analysis: Modeling the Heap by
//	Merging Equivalent Automata." PLDI 2017.
//
// together with everything it runs on: an object-oriented IR with a
// textual format, a context-sensitive whole-program points-to analysis
// (Doop-style, with call-site/object/type sensitivity), the three
// type-dependent clients of the paper (call graph construction,
// devirtualization, may-fail casting), and a benchmark suite that
// regenerates every table and figure of the paper's evaluation.
//
// The typical flow mirrors Figure 5 of the paper:
//
//	prog, _ := mahjong.LoadProgram("app.ir")        // or ParseProgram
//	abs, _  := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
//	rep, _  := mahjong.Analyze(prog, mahjong.Config{
//	        Analysis: "3obj",
//	        Heap:     mahjong.HeapMahjong,
//	        Abstraction: abs,
//	})
//	fmt.Println(rep.Metrics.CallGraphEdges)
package mahjong

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"mahjong/internal/bench"
	"mahjong/internal/budget"
	"mahjong/internal/clients"
	"mahjong/internal/core"
	"mahjong/internal/failure"
	"mahjong/internal/faultinject"
	"mahjong/internal/lang"
	"mahjong/internal/parser"
	"mahjong/internal/pta"
	"mahjong/internal/synth"
	"mahjong/internal/trace"
)

// Program is an analyzable whole program; build one with LoadProgram,
// ParseProgram, GenerateBenchmark, or the lang builder API.
type Program = lang.Program

// LoadProgram parses a textual-IR file.
func LoadProgram(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parser.Parse(path, string(data))
}

// ParseProgram parses textual IR from a string; name is used in errors.
func ParseProgram(name, src string) (*Program, error) {
	return parser.Parse(name, src)
}

// PrintProgram renders a program back to textual IR.
func PrintProgram(p *Program) string { return parser.Print(p) }

// GenerateBenchmark builds one of the 12 named synthetic benchmarks
// ("eclipse", "pmd", "luindex", …; see BenchmarkNames).
func GenerateBenchmark(name string) (*Program, error) {
	prof, err := synth.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return synth.Generate(prof)
}

// BenchmarkNames lists the available benchmark programs.
func BenchmarkNames() []string { return synth.ProfileNames() }

// HeapKind selects a heap abstraction.
type HeapKind string

const (
	// HeapAllocSite is the conventional allocation-site abstraction.
	HeapAllocSite HeapKind = "alloc-site"
	// HeapAllocType is the naive one-object-per-type abstraction (§2.1).
	HeapAllocType HeapKind = "alloc-type"
	// HeapMahjong is the paper's abstraction; requires an Abstraction
	// built by BuildAbstraction.
	HeapMahjong HeapKind = "mahjong"
)

// AbstractionOptions tunes the heap modeler (they mirror the §5
// optimizations and the representative-selection discussion of §3.6.2).
type AbstractionOptions struct {
	// Workers bounds parallel per-type merging; 0 = GOMAXPROCS.
	Workers int
	// TypeDiverseReps elects representatives that maximize type-context
	// diversity for M-ktype (Example 3.2) instead of the paper's
	// arbitrary choice.
	TypeDiverseReps bool
	// DisableSharedAutomata turns off the hash-consed automata store
	// (ablation; results are identical, construction is slower).
	DisableSharedAutomata bool
	// OmitNullNode drops the dummy null object from the field points-to
	// graph (ablation of the null-field handling, Example 3.1).
	OmitNullNode bool
	// PreBudget caps the pre-analysis (0 = unlimited).
	PreBudget int64
	// SolverWorkers parallelizes the pre-analysis solver's propagation
	// across sharded worker goroutines: 0 or 1 keep the sequential
	// solver, N >= 2 uses N workers, and a negative value uses
	// GOMAXPROCS. Results are identical for every setting; see
	// docs/PARALLEL.md.
	SolverWorkers int
	// Renumber lays context-insensitive objects out contiguously by
	// class-hierarchy pre-order so type-filtered propagation becomes a
	// word-range intersection. Results are identical; only the solver's
	// internal object numbering changes.
	Renumber bool
	// Resources caps what the whole pipeline (pre-analysis, FPG, heap
	// modeler) may consume; exhaustion aborts with an error wrapping
	// ErrBudgetExhausted. Zero value = unlimited.
	Resources ResourceBudget
	// Trace, when enabled, records one span per pipeline stage
	// ("pta.solve", "fpg.build", "core.build" with per-worker
	// "automata.equiv" children) on the tracer behind the Ctx. Obtain one
	// from TraceCtx; the zero value disables tracing. See
	// docs/OBSERVABILITY.md.
	Trace TraceCtx
}

// Abstraction is a built Mahjong heap abstraction: the merged-object
// map plus statistics about the merge.
type Abstraction struct {
	// MOM maps each allocation site to its representative (Definition 2.2).
	MOM map[*lang.AllocSite]*lang.AllocSite
	// Objects and MergedObjects are the heap sizes before and after
	// merging (the Figure 8 pair).
	Objects, MergedObjects int
	// Classes is the number of equivalence classes of size >= 2.
	Classes int
	// PreTime, FPGTime and ModelTime split the pre-analysis pipeline
	// cost (the §6.1.1 breakdown).
	PreTime, FPGTime, ModelTime time.Duration

	res *core.Result
}

// Reduction returns the fraction of abstract objects eliminated.
func (a *Abstraction) Reduction() float64 { return a.res.Reduction() }

// Save writes the abstraction (its equivalence classes, keyed by stable
// allocation-site labels) as JSON, so an expensive modeling run can be
// reloaded later with LoadAbstraction.
func (a *Abstraction) Save(w io.Writer) error { return a.res.Save(w) }

// LoadAbstraction reads an abstraction previously written by Save and
// rebinds it to prog's allocation sites. It fails when the file belongs
// to a different program.
func LoadAbstraction(r io.Reader, prog *Program) (*Abstraction, error) {
	mom, total, err := core.LoadMOM(r, prog)
	if err != nil {
		return nil, err
	}
	// Reconstruct the summary counters from the loaded classes.
	classes := map[*lang.AllocSite]int{}
	for site, rep := range mom {
		if site != rep {
			classes[rep]++
		}
	}
	mergedAway := 0
	for _, extra := range classes {
		mergedAway += extra
	}
	res := &core.Result{MOM: mom, NumObjects: total, NumMerged: total - mergedAway}
	return &Abstraction{
		MOM:           mom,
		Objects:       total,
		MergedObjects: total - mergedAway,
		Classes:       len(classes),
		res:           res,
	}, nil
}

// SizeHistogram returns (class size, #classes) pairs (Figure 9).
func (a *Abstraction) SizeHistogram() [][2]int { return a.res.SizeHistogram() }

// ErrBudget is returned (wrapped) when a pipeline stage exhausts its
// deterministic work budget; test with errors.Is.
var ErrBudget = pta.ErrBudget

// ErrBudgetExhausted is returned (wrapped) when a pipeline stage
// exhausts a ResourceBudget; test with errors.Is. Unlike the legacy
// work budget (Config.BudgetWork → Report.Scalable=false, nil error),
// resource-budget exhaustion is a hard failure that callers may answer
// by degrading to the allocation-site abstraction.
var ErrBudgetExhausted = budget.ErrExhausted

// ResourceBudget caps the resources one pipeline run may consume; the
// zero value means unlimited. The three knobs bound, respectively,
// propagated points-to facts (solver work + FPG edge facts), live
// 64-bit words backing points-to bitsets, and automata-equivalence
// merge-pair tests. One budget covers ALL stages of a run: a solve
// that uses most of the fact budget leaves little for FPG
// construction, which is the point — the budget bounds the job, not
// each stage.
type ResourceBudget = budget.Limits

// InternalError is a panic recovered at a pipeline-stage boundary and
// converted into an error: a bug (or injected fault) in one stage
// fails that run with a typed, stage-attributed error instead of
// tearing down the process. Retrieve with errors.As to learn the stage
// and captured stack.
type InternalError = failure.InternalError

// TraceCtx attaches pipeline spans to a tracer (internal/trace). The
// zero value disables tracing. A typical traced run:
//
//	tr := mahjong.NewTracer()
//	abs, _ := mahjong.BuildAbstraction(p, mahjong.AbstractionOptions{Trace: tr.Root()})
//	rep, _ := mahjong.Analyze(p, mahjong.Config{Heap: mahjong.HeapMahjong, Abstraction: abs, Trace: tr.Root()})
//	tr.Snapshot().WriteJSON(os.Stdout)
type TraceCtx = trace.Ctx

// Tracer records the spans of one pipeline run; see TraceCtx.
type Tracer = trace.Tracer

// NewTracer returns an empty span tracer for TraceCtx.
func NewTracer() *Tracer { return trace.New() }

// BuildAbstraction runs the Mahjong pipeline of Figure 5: the fast
// context-insensitive pre-analysis, FPG construction, and the heap
// modeler (Algorithm 1).
func BuildAbstraction(p *Program, opts AbstractionOptions) (*Abstraction, error) {
	return BuildAbstractionContext(context.Background(), p, opts)
}

// BuildAbstractionContext is BuildAbstraction with cancellation: every
// pipeline stage (pre-analysis solver, parallel merge workers) checks
// ctx, and a cancelled or timed-out context aborts with an error
// wrapping context.Canceled or context.DeadlineExceeded.
func BuildAbstractionContext(ctx context.Context, p *Program, opts AbstractionOptions) (*Abstraction, error) {
	abs, _, _, err := buildPipeline(ctx, p, opts, nil, nil, nil, false)
	return abs, err
}

// Config selects the analysis of an Analyze run.
type Config struct {
	// Analysis is one of "ci", "2cs", "2type", "3type", "2obj", "3obj"
	// (any k works via KCallSite/KObject/KTypeSensitive below).
	Analysis string
	// Heap selects the abstraction; HeapMahjong requires Abstraction.
	Heap HeapKind
	// Abstraction is the result of BuildAbstraction (HeapMahjong only).
	Abstraction *Abstraction
	// BudgetWork caps propagation work (0 = unlimited); BudgetTime caps
	// wall-clock time. Exceeding either aborts with Report.Scalable=false.
	BudgetWork int64
	BudgetTime time.Duration
	// Resources caps what the run may consume (see ResourceBudget).
	// Unlike BudgetWork's partial-result semantics, exhaustion is a hard
	// failure: AnalyzeContext returns an error wrapping
	// ErrBudgetExhausted and no Report.
	Resources ResourceBudget
	// SolverWorkers parallelizes the solver's propagation across sharded
	// worker goroutines: 0 or 1 keep the sequential solver, N >= 2 uses
	// N workers, and a negative value uses GOMAXPROCS. Results are
	// identical for every setting; see docs/PARALLEL.md.
	SolverWorkers int
	// Renumber lays context-insensitive objects out contiguously by
	// class-hierarchy pre-order so type-filtered propagation becomes a
	// word-range intersection. Results are identical.
	Renumber bool
	// Trace, when enabled, records a "pta.solve" span for the main
	// analysis and a "clients.evaluate" span for client evaluation. The
	// zero value disables tracing; see AbstractionOptions.Trace.
	Trace TraceCtx
}

// Report is the outcome of Analyze.
type Report struct {
	// Scalable is false when the run exceeded its budget; Metrics are
	// only valid when Scalable.
	Scalable bool
	Time     time.Duration
	Work     int64
	// Metrics are the three type-dependent client results plus
	// reachable-method count.
	Metrics clients.Metrics
	// CSObjects and CSMethods measure context-sensitive analysis size.
	CSObjects, CSMethods int
	// Solver holds the solver's internal performance counters (graph
	// size, copy cycles collapsed, filter-mask usage); valid for every
	// run, including unscalable ones.
	Solver pta.Stats

	result *pta.Result
}

// Result exposes the underlying points-to result for advanced queries
// (points-to sets, call targets, reachable casts).
func (r *Report) Result() *pta.Result { return r.result }

// Analyze runs a points-to analysis with the three type-dependent
// clients on top.
func Analyze(p *Program, cfg Config) (*Report, error) {
	return AnalyzeContext(context.Background(), p, cfg)
}

// AnalyzeContext is Analyze with cancellation: the solver's worklist
// loop checks ctx alongside its Budget, and a cancelled or timed-out
// context aborts the run with an error wrapping context.Canceled or
// context.DeadlineExceeded (budget overruns still return a Report with
// Scalable=false and a nil error).
func AnalyzeContext(ctx context.Context, p *Program, cfg Config) (*Report, error) {
	sel, err := selectorFor(cfg.Analysis)
	if err != nil {
		return nil, err
	}
	var heap pta.HeapModel
	switch cfg.Heap {
	case HeapAllocSite, "":
		heap = pta.NewAllocSiteModel()
	case HeapAllocType:
		heap = pta.NewAllocTypeModel()
	case HeapMahjong:
		if cfg.Abstraction == nil {
			return nil, fmt.Errorf("mahjong: HeapMahjong requires Config.Abstraction")
		}
		heap = pta.NewMergedSiteModel(cfg.Abstraction.MOM)
	default:
		return nil, fmt.Errorf("mahjong: unknown heap kind %q", cfg.Heap)
	}
	r, err := pta.SolveContext(ctx, p, pta.Options{
		Selector: sel,
		Heap:     heap,
		Budget:   pta.Budget{Work: cfg.BudgetWork, Time: cfg.BudgetTime},
		Meter:    budget.NewMeter(cfg.Resources),
		Trace:    cfg.Trace,
		Parallel: cfg.SolverWorkers,
		Renumber: cfg.Renumber,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scalable:  !r.Aborted,
		Time:      r.Duration,
		Work:      r.Work,
		CSObjects: r.NumCSObjs(),
		CSMethods: r.NumCSMethods(),
		Solver:    r.Stats(),
		result:    r,
	}
	if rep.Scalable {
		rep.Metrics, err = evaluateClients(r, cfg.Trace)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// evaluateClients runs the three type-dependent clients behind the
// "clients.evaluate" stage guard: a bug in a client metric fails the
// run with an *InternalError instead of crashing the caller.
func evaluateClients(r *pta.Result, tc TraceCtx) (m clients.Metrics, err error) {
	// Span-close defer precedes the stage guard so it observes the
	// recovered error (see pta.SolveContext for the idiom).
	sp := tc.Start(faultinject.StageClients)
	defer func() { sp.Close(err) }()
	defer failure.Recover(faultinject.StageClients, &err)
	if err := faultinject.Fire(faultinject.StageClients); err != nil {
		return clients.Metrics{}, fmt.Errorf("mahjong: clients: %w", err)
	}
	m = clients.Evaluate(r)
	sp.Add("call_graph_edges", int64(m.CallGraphEdges))
	sp.Add("poly_call_sites", int64(m.PolyCallSites))
	sp.Add("may_fail_casts", int64(m.MayFailCasts))
	sp.Add("reachable_methods", int64(m.Reachable))
	sp.Add("escaping_sites", int64(m.EscapingSites))
	sp.Add("stack_alloc_sites", int64(m.StackAllocSites))
	sp.Add("may_null_loads", int64(m.MayNullLoads))
	sp.Add("tainted_sinks", int64(m.TaintedSinks))
	sp.Add("taint_sinks", int64(m.TaintSinks))
	return m, nil
}

// ValidAnalysis reports whether name is accepted by Config.Analysis
// ("", "ci", or any k-prefixed cs/obj/type sensitivity).
func ValidAnalysis(name string) bool {
	_, err := selectorFor(name)
	return err == nil
}

func selectorFor(name string) (pta.Selector, error) {
	switch name {
	case "", "ci":
		return pta.CI{}, nil
	}
	var k int
	var kind string
	if _, err := fmt.Sscanf(name, "%d%s", &k, &kind); err != nil || k < 1 {
		return nil, fmt.Errorf("mahjong: unknown analysis %q", name)
	}
	switch kind {
	case "cs":
		return pta.KCFA{K: k}, nil
	case "obj":
		return pta.KObj{K: k}, nil
	case "type":
		return pta.KType{K: k}, nil
	default:
		return nil, fmt.Errorf("mahjong: unknown analysis %q", name)
	}
}

// NewSuite returns the full experiment suite used by cmd/experiments
// and the root benchmarks.
func NewSuite() *bench.Suite { return bench.NewSuite() }
