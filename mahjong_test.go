package mahjong_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mahjong"
)

const figure1IR = `
class A {
  field f: A
  method foo(): void { return }
}
class B extends A {
  method foo(): void { return }
}
class C extends A {
  method foo(): void { return }
}
class Main {
  static method main(): void {
    var x: A
    var y: A
    var z: A
    var a: A
    var c: C
    var t4: A
    var t5: A
    var t6: A
    x = new A
    y = new A
    z = new A
    t4 = new B
    x.f = t4
    t5 = new C
    y.f = t5
    t6 = new C
    z.f = t6
    a = z.f
    a.foo()
    c = (C) a
    return
  }
}
entry Main.main/0
`

func TestParseAndAnalyze(t *testing.T) {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if abs.Objects != 6 || abs.MergedObjects != 4 {
		t.Fatalf("merge %d→%d, want 6→4", abs.Objects, abs.MergedObjects)
	}
	if abs.Classes != 2 {
		t.Fatalf("classes=%d want 2", abs.Classes)
	}
	rep, err := mahjong.Analyze(prog, mahjong.Config{
		Analysis: "ci", Heap: mahjong.HeapMahjong, Abstraction: abs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.PolyCallSites != 0 || rep.Metrics.MayFailCasts != 0 {
		t.Fatalf("precision lost: %+v", rep.Metrics)
	}
}

func TestLoadProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig1.ir")
	if err := os.WriteFile(path, []byte(figure1IR), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := mahjong.LoadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Stats().AllocSites != 6 {
		t.Fatalf("sites=%d", prog.Stats().AllocSites)
	}
	if _, err := mahjong.LoadProgram(filepath.Join(dir, "missing.ir")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestPrintProgramRoundTrip(t *testing.T) {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		t.Fatal(err)
	}
	text := mahjong.PrintProgram(prog)
	prog2, err := mahjong.ParseProgram("printed.ir", text)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if prog.Stats() != prog2.Stats() {
		t.Fatal("stats changed through round trip")
	}
}

func TestGenerateBenchmark(t *testing.T) {
	names := mahjong.BenchmarkNames()
	if len(names) != 12 {
		t.Fatalf("benchmarks=%d", len(names))
	}
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Stats().AllocSites < 100 {
		t.Fatal("luindex too small")
	}
	if _, err := mahjong.GenerateBenchmark("not-a-benchmark"); err == nil {
		t.Fatal("want error")
	}
}

func TestAnalysisSelectors(t *testing.T) {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "ci", "1cs", "2cs", "2obj", "3obj", "2type", "3type", "4obj"} {
		rep, err := mahjong.Analyze(prog, mahjong.Config{Analysis: name})
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if !rep.Scalable {
			t.Fatalf("%q: not scalable on figure 1", name)
		}
		if rep.Metrics.Reachable == 0 {
			t.Fatalf("%q: no reachable methods", name)
		}
	}
	for _, bad := range []string{"2foo", "xobj", "0obj", "-1cs", "obj"} {
		if _, err := mahjong.Analyze(prog, mahjong.Config{Analysis: bad}); err == nil {
			t.Fatalf("%q should be rejected", bad)
		}
	}
}

func TestHeapKinds(t *testing.T) {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		t.Fatal(err)
	}
	// Mahjong heap without abstraction is an error.
	if _, err := mahjong.Analyze(prog, mahjong.Config{Heap: mahjong.HeapMahjong}); err == nil {
		t.Fatal("HeapMahjong without Abstraction should fail")
	}
	if _, err := mahjong.Analyze(prog, mahjong.Config{Heap: "bogus"}); err == nil {
		t.Fatal("unknown heap should fail")
	}
	// Alloc-type loses precision on figure 1.
	rep, err := mahjong.Analyze(prog, mahjong.Config{Heap: mahjong.HeapAllocType})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.PolyCallSites != 1 || rep.Metrics.MayFailCasts != 1 {
		t.Fatalf("alloc-type metrics %+v, want 1 poly and 1 may-fail", rep.Metrics)
	}
}

func TestBudgetAbortReport(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mahjong.Analyze(prog, mahjong.Config{Analysis: "2obj", BudgetWork: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scalable {
		t.Fatal("expected budget abort")
	}
}

func TestAbstractionStatistics(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if abs.Reduction() <= 0 {
		t.Fatal("no reduction on luindex")
	}
	hist := abs.SizeHistogram()
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	if abs.PreTime <= 0 || abs.ModelTime <= 0 {
		t.Fatal("missing pipeline timings")
	}
}

func TestAblationOptionsPreserveResults(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		t.Fatal(err)
	}
	base, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noShare, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{DisableSharedAutomata: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.MergedObjects != noShare.MergedObjects {
		t.Fatalf("sharing ablation changed results: %d vs %d", base.MergedObjects, noShare.MergedObjects)
	}
	// The null ablation may only coarsen (merge at least as much).
	noNull, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{OmitNullNode: true})
	if err != nil {
		t.Fatal(err)
	}
	if noNull.MergedObjects > base.MergedObjects {
		t.Fatalf("omitting null should not split classes: %d vs %d", noNull.MergedObjects, base.MergedObjects)
	}
}

func TestReportResultAccess(t *testing.T) {
	prog, err := mahjong.ParseProgram("fig1.ir", figure1IR)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mahjong.Analyze(prog, mahjong.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Result()
	if res == nil {
		t.Fatal("nil result")
	}
	if len(res.ReachableInvokes()) != 1 {
		t.Fatalf("invokes=%d", len(res.ReachableInvokes()))
	}
	if len(res.ReachableCasts()) != 1 {
		t.Fatalf("casts=%d", len(res.ReachableCasts()))
	}
}

func TestSuiteAccessor(t *testing.T) {
	s := mahjong.NewSuite()
	if len(s.Programs) != 12 {
		t.Fatalf("programs=%d", len(s.Programs))
	}
	s.Programs = []string{"luindex"}
	s.Repeat = 1
	var sb strings.Builder
	if err := s.Fig8(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "luindex") {
		t.Fatal("Fig8 output missing program")
	}
}

func TestAbstractionSaveLoad(t *testing.T) {
	prog, err := mahjong.GenerateBenchmark("luindex")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := mahjong.BuildAbstraction(prog, mahjong.AbstractionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := abs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mahjong.LoadAbstraction(strings.NewReader(buf.String()), prog)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Objects != abs.Objects || loaded.MergedObjects != abs.MergedObjects {
		t.Fatalf("counters drifted: %d/%d vs %d/%d",
			loaded.Objects, loaded.MergedObjects, abs.Objects, abs.MergedObjects)
	}
	// Analyses with the loaded abstraction give identical metrics.
	r1, err := mahjong.Analyze(prog, mahjong.Config{Analysis: "2obj", Heap: mahjong.HeapMahjong, Abstraction: abs})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mahjong.Analyze(prog, mahjong.Config{Analysis: "2obj", Heap: mahjong.HeapMahjong, Abstraction: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics != r2.Metrics {
		t.Fatalf("metrics differ after reload: %+v vs %+v", r1.Metrics, r2.Metrics)
	}
	// Loading into a different program fails.
	other, err := mahjong.GenerateBenchmark("fop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mahjong.LoadAbstraction(strings.NewReader(buf.String()), other); err == nil {
		t.Fatal("cross-program load must fail")
	}
}
