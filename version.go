package mahjong

// Version identifies this build of the library and its tools. The
// cmd/mahjong and cmd/mahjongd binaries report it via -version, and
// mahjongd exports it as the mahjongd_build_info metric.
const Version = "0.6.0"
